(** Binary page format.

    Each tree node corresponds to "a page or block of secondary storage"
    (paper §2.2). The in-memory store keeps decoded nodes for speed, but
    this codec defines the durable format: it is exercised by the
    persistence layer (snapshot save/load, the paged store) and by
    round-trip tests, so the library could be rebased onto a real pager
    without touching tree code.

    Version 2 frames every node with its body length and an FNV-1a
    checksum, so a torn or partially-persisted page is {e detected} at
    decode time (raising {!Corrupt}) rather than parsed into a plausible
    but wrong node — the failure mode crash-recovery testing punishes
    hardest (see doc/RECOVERY.md).

    Layout (little-endian):
    {v
      magic      u8   = 0xB7
      version    u8   = 2
      body_len   u32  (bytes after the checksum field)
      checksum   u32  (FNV-1a-32 of the body)
      -- body --
      level      u16
      flags      u8   (bit0 root, bit1 deleted)
      fwd        i64  (forwarding ptr when deleted, else -1)
      link       i64  (-1 = nil)
      low_tag    u8   (0 = -inf, 1 = key, 2 = +inf) [key bytes if tag = 1]
      high_tag   u8   likewise
      nkeys      u32  [keys]
      nptrs      u32  [ptrs as i64]
    v} *)

let magic = 0xB7
let version = 2

let version_varint = 3
(** Version 3 = identical layout except the ptr array is LEB128/zigzag
    varints instead of fixed i64s. Only written for {!Node.vrec_level}
    pages, whose ptrs are a dense int stream (epochs, tags, encoded
    values) dominated by small numbers — varints cut them 3–6x. Plain
    tree nodes keep writing version 2, so stores from before this codec
    existed stay byte-identical and open unchanged. *)

let frame_bytes = 10 (* magic + version + body_len + checksum *)

exception Corrupt of string

(* LEB128 with zigzag mapping so small negatives (-1 = nil ptr) stay
   1 byte. *)
let add_varint buf v =
  let u = (v lsl 1) lxor (v asr 62) in
  (* zigzag on 63-bit OCaml ints *)
  let rec go u =
    if u land lnot 0x7F = 0 then Buffer.add_uint8 buf u
    else begin
      Buffer.add_uint8 buf (0x80 lor (u land 0x7F));
      go (u lsr 7)
    end
  in
  go u

let get_varint bytes ~pos =
  let rec go acc shift pos =
    if pos >= Bytes.length bytes then raise (Corrupt "truncated varint");
    let b = Bytes.get_uint8 bytes pos in
    let acc = acc lor ((b land 0x7F) lsl shift) in
    if b land 0x80 = 0 then (acc, pos + 1)
    else if shift >= 63 then raise (Corrupt "varint overflow")
    else go acc (shift + 7) (pos + 1)
  in
  let u, pos = go 0 0 pos in
  ((u lsr 1) lxor (-(u land 1)), pos)

module Make (K : Key.S) = struct
  let encode_bound buf = function
    | Bound.Neg_inf -> Buffer.add_uint8 buf 0
    | Bound.Key k ->
        Buffer.add_uint8 buf 1;
        K.encode buf k
    | Bound.Pos_inf -> Buffer.add_uint8 buf 2

  let decode_bound bytes ~pos =
    match Bytes.get_uint8 bytes pos with
    | 0 -> (Bound.Neg_inf, pos + 1)
    | 1 ->
        let k, pos = K.decode bytes ~pos:(pos + 1) in
        (Bound.Key k, pos)
    | 2 -> (Bound.Pos_inf, pos + 1)
    | t -> raise (Corrupt (Printf.sprintf "bad bound tag %d" t))

  let encode_body buf ~varint (n : K.t Node.t) =
    Buffer.add_uint16_le buf n.Node.level;
    let deleted, fwd =
      match n.Node.state with Node.Deleted f -> (true, f) | Node.Live -> (false, -1)
    in
    let flags = (if n.Node.is_root then 1 else 0) lor if deleted then 2 else 0 in
    Buffer.add_uint8 buf flags;
    Buffer.add_int64_le buf (Int64.of_int fwd);
    Buffer.add_int64_le buf (Int64.of_int (match n.Node.link with Some p -> p | None -> -1));
    encode_bound buf n.Node.low;
    encode_bound buf n.Node.high;
    Buffer.add_int32_le buf (Int32.of_int (Array.length n.Node.keys));
    Array.iter (K.encode buf) n.Node.keys;
    Buffer.add_int32_le buf (Int32.of_int (Array.length n.Node.ptrs));
    if varint then Array.iter (add_varint buf) n.Node.ptrs
    else Array.iter (fun p -> Buffer.add_int64_le buf (Int64.of_int p)) n.Node.ptrs

  let encode buf (n : K.t Node.t) =
    let varint = n.Node.level = Node.vrec_level in
    let body = Buffer.create 256 in
    encode_body body ~varint n;
    let body = Buffer.to_bytes body in
    Buffer.add_uint8 buf magic;
    Buffer.add_uint8 buf (if varint then version_varint else version);
    Buffer.add_int32_le buf (Int32.of_int (Bytes.length body));
    Buffer.add_int32_le buf
      (Int32.of_int (Repro_util.Checksum.fnv32 body ~pos:0 ~len:(Bytes.length body)));
    Buffer.add_bytes buf body

  let decode bytes ~pos : K.t Node.t * int =
    if pos + frame_bytes > Bytes.length bytes then raise (Corrupt "truncated frame");
    if Bytes.get_uint8 bytes pos <> magic then raise (Corrupt "bad magic");
    let ver = Bytes.get_uint8 bytes (pos + 1) in
    if ver <> version && ver <> version_varint then raise (Corrupt "bad version");
    let varint = ver = version_varint in
    let body_len = Int32.to_int (Bytes.get_int32_le bytes (pos + 2)) in
    if body_len < 0 || pos + frame_bytes + body_len > Bytes.length bytes then
      raise (Corrupt "bad body length");
    let want = Int32.to_int (Bytes.get_int32_le bytes (pos + 6)) land 0xFFFFFFFF in
    let got = Repro_util.Checksum.fnv32 bytes ~pos:(pos + frame_bytes) ~len:body_len in
    if want <> got then
      raise
        (Corrupt
           (Printf.sprintf "checksum mismatch (stored %08x, computed %08x)" want got));
    let pos = pos + frame_bytes in
    let body_end = pos + body_len in
    let level = Bytes.get_uint16_le bytes pos in
    let flags = Bytes.get_uint8 bytes (pos + 2) in
    let fwd = Int64.to_int (Bytes.get_int64_le bytes (pos + 3)) in
    let link = Int64.to_int (Bytes.get_int64_le bytes (pos + 11)) in
    let pos = pos + 19 in
    let low, pos = decode_bound bytes ~pos in
    let high, pos = decode_bound bytes ~pos in
    let nkeys = Int32.to_int (Bytes.get_int32_le bytes pos) in
    if nkeys < 0 then raise (Corrupt "negative key count");
    let pos = ref (pos + 4) in
    let keys =
      Array.init nkeys (fun _ ->
          let k, p = K.decode bytes ~pos:!pos in
          pos := p;
          k)
    in
    let nptrs = Int32.to_int (Bytes.get_int32_le bytes !pos) in
    if nptrs < 0 then raise (Corrupt "negative ptr count");
    pos := !pos + 4;
    let ptrs =
      if varint then
        Array.init nptrs (fun _ ->
            let v, p = get_varint bytes ~pos:!pos in
            pos := p;
            v)
      else
        Array.init nptrs (fun _ ->
            let v = Int64.to_int (Bytes.get_int64_le bytes !pos) in
            pos := !pos + 8;
            v)
    in
    if !pos <> body_end then raise (Corrupt "body length does not match contents");
    let node =
      {
        Node.level;
        keys;
        ptrs;
        low;
        high;
        link = (if link < 0 then None else Some link);
        is_root = flags land 1 <> 0;
        state = (if flags land 2 <> 0 then Node.Deleted fwd else Node.Live);
      }
    in
    (node, !pos)

  let to_bytes n =
    let buf = Buffer.create 256 in
    encode buf n;
    Buffer.to_bytes buf

  let of_bytes bytes = fst (decode bytes ~pos:0)

  (** Encoded size in bytes; benches use it to report space utilisation in
      on-disk terms. *)
  let encoded_size n = Bytes.length (to_bytes n)
end
