(** Pure node algebra for B-link trees (paper §2.1, Figs 1–3).

    A node covers the interval (low, high]. Internal: [m] keys and [m+1]
    children, child [c_j] covering [(k_j, k_{j+1}]] with [k_0 = low],
    [k_{m+1} = high]. Leaf: [m] keys with [m] record pointers. Every node
    carries its high value and right link (Lehman–Yao) plus its low value
    and deletion state (Sagiv's compression).

    All operations are pure; the store publishes each new version with a
    single atomic write, giving the paper's indivisible get/put model. *)

type ptr = int

val nil : ptr

val vrec_level : int
(** Pseudo-level (0xFFFF) marking version-record pages: serialized
    {!Record_store} chains stored through the same page store as the tree.
    Not a tree level — traversals and leak checks skip pages tagged with
    it. *)

type state =
  | Live
  | Deleted of ptr
      (** forwarding pointer: the left sibling the contents merged into, or
          the new root after a root removal (§5.2 case 1) *)

type 'k t = {
  level : int;  (** 0 = leaf *)
  keys : 'k array;
  ptrs : ptr array;
      (** leaf: record pointers, [|ptrs| = |keys|]; internal: children,
          [|ptrs| = |keys| + 1] *)
  low : 'k Bound.t;
  high : 'k Bound.t;
  link : ptr option;  (** right neighbour at the same level *)
  is_root : bool;  (** the root bit of §3.3 *)
  state : state;
}

val is_leaf : 'k t -> bool
val is_deleted : 'k t -> bool
val nkeys : 'k t -> int

val npairs : 'k t -> int
(** Pair count in the paper's sense (= key count). *)

val is_safe : order:int -> 'k t -> bool
(** Fewer than 2k pairs: an insertion cannot overflow it. *)

val is_sparse : order:int -> 'k t -> bool
(** Below k pairs: a compression candidate (§5.1). *)

module Make (K : Key.S) : sig
  type node = K.t t

  val bcompare : K.t Bound.t -> K.t Bound.t -> int
  val key_vs_bound : K.t -> K.t Bound.t -> int

  val in_range : node -> K.t -> bool
  (** low < k <= high *)

  val rank : node -> K.t -> int
  (** Number of keys strictly smaller than [k]. *)

  val rank_b : node -> K.t Bound.t -> int
  (** {!rank} generalised to bounds (the compactor navigates by high
      values, which may be +inf). *)

  val mem : node -> K.t -> bool

  val child_for : node -> K.t -> ptr
  (** Child to follow for [k]; requires an internal node and [k <= high]. *)

  val child_for_b : node -> K.t Bound.t -> ptr

  (** The [next(A, v)] step of Fig 4. *)
  type step = Link of ptr | Child of ptr | Here

  val next : node -> K.t -> step

  val leaf_find : node -> K.t -> ptr option

  val empty_root : unit -> node
  (** The initial tree: one empty leaf with the root bit set. *)

  val new_root : level:int -> left_ptr:ptr -> right_ptr:ptr -> sep:K.t -> node
  (** Fresh root above a split old root (Fig 6). *)

  val leaf_insert : node -> K.t -> ptr -> node
  (** Requires: leaf, in range, not present, not full. *)

  val leaf_set_payload : node -> K.t -> ptr -> (node * ptr) option
  (** Replace the record pointer stored with a key; returns the new node
      and the old pointer, or [None] when absent. *)

  val leaf_delete : node -> K.t -> node option
  (** [None] when absent. The high value is never adjusted (§2.1 fn 7). *)

  val leaf_split : node -> K.t -> ptr -> right_ptr:ptr -> node * node
  (** Split a full leaf while inserting; the left half keeps ceil(n/2)
      pairs, gets [high =] its largest key and [link = right_ptr]. *)

  val internal_insert : node -> K.t -> ptr -> node
  (** Insert the pair (separator, pointer-to-new-right-node) "immediately
      to the left of the smallest key u such that k < u" (§3.1): the
      pointer lands just after the split child's old pointer. *)

  val internal_split : node -> K.t -> ptr -> right_ptr:ptr -> node * node
  (** The middle key becomes the boundary (left's high / right's low) and
      is stored in neither half. *)

  val can_merge : order:int -> node -> node -> bool
  (** Whether a node and its right neighbour fit in one node; for internal
      nodes the boundary returns as a separator (hence the +1). *)

  val merge : node -> node -> node
  (** Merge the right neighbour into the left (§5.2): the left takes all
      pairs plus the right's high value and link. *)

  val redistribute : node -> node -> node * node * K.t
  (** Rebalance so both halves hold >= k pairs; returns the new boundary,
      which must also replace the parent's separator. *)

  val mark_deleted : node -> fwd:ptr -> node
  (** Tombstone with a forwarding pointer; the link is cleared (readers
      continue via [fwd], whose link already bypasses this node). *)

  val child_slot : node -> ptr -> int option
  (** Index [j] with [ptrs.(j) = child]. *)

  val slot_high : node -> int -> K.t Bound.t
  (** High value of the range child slot [j] covers. *)

  val slot_low : node -> int -> K.t Bound.t

  val has_pair : node -> ptr:ptr -> high:K.t Bound.t -> bool
  (** The §5.4 validity test: the parent still holds the pair (p, v). *)

  val remove_merged_pair : node -> right_slot:int -> node
  (** Drop the old separator and the merged-away child's pointer (Fig 7). *)

  val replace_separator : node -> right_slot:int -> sep:K.t -> node

  val pp : Format.formatter -> node -> unit
  val to_string : node -> string

  val check : ?order:int -> node -> string list
  (** Local invariant violations, human-readable; [] when clean. *)
end
