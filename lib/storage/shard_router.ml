(** Deterministic key → shard routing.

    The partition layer hashes every int key through a fixed 64-bit
    finalizer (splitmix64's, the same mixer {!Repro_util.Splitmix}
    steps with) and reduces modulo the shard count. The function is a
    pure arithmetic pipeline — no per-process salt, no dependence on
    [Hashtbl.hash]'s implementation — so a key routes to the same shard
    in every process, on every run, across reopens: the property the
    on-disk shard headers validate ({!Paged_store}'s shard fields) and
    [test_shard] pins with golden values. *)

(* splitmix64 finalizer: xor-shift / multiply rounds with full 64-bit
   wraparound, computed in Int64 (the constants exceed OCaml's 63-bit
   native int) and truncated back to int at the end. The truncation
   drops one high bit of an already-mixed word — harmless — and keeps
   the exported value a plain int. *)
let mix k =
  let open Int64 in
  let h = mul (of_int k) 0x9E3779B97F4A7C15L in
  let h = mul (logxor h (shift_right_logical h 30)) 0xBF58476D1CE4E5B9L in
  let h = mul (logxor h (shift_right_logical h 27)) 0x94D049BB133111EBL in
  to_int (logxor h (shift_right_logical h 31))

let shard_of ~shards key =
  if shards < 1 then invalid_arg "Shard_router.shard_of: shards must be >= 1";
  if shards = 1 then 0 else mix key land max_int mod shards
