(** Concurrent page store: the paper's model of secondary storage (§2.2).

    Each page slot holds an immutable node snapshot behind an [Atomic.t],
    so [get] and [put] are indivisible exactly as the model requires, and
    readers never block. Each slot also carries the page latch used by
    [lock]/[unlock]; a latch never blocks readers — it only serialises
    writers, again per the model.

    Pages live in fixed-size chunks that are allocated on demand and never
    move, so readers index without synchronisation. Freed pages go to a
    Treiber-stack free list and are recycled by the allocator; the {!Epoch}
    manager decides {e when} it is safe to free (§5.3). *)

type 'k slot = { content : 'k Node.t option Atomic.t; latch : Mutex.t }

let chunk_bits = 12
let chunk_size = 1 lsl chunk_bits
let max_chunks = 1 lsl 14 (* 64 M pages *)

type 'k t = {
  chunks : 'k slot array option Atomic.t array;
  next : int Atomic.t;  (** bump allocator frontier *)
  free_list : int list Atomic.t;
  freed : int Atomic.t;  (** total pages ever freed *)
  allocated : int Atomic.t;  (** total pages ever allocated *)
  meta : Bytes.t option Atomic.t;  (** opaque client blob (see {!Page_store.S}) *)
}

let create () =
  {
    chunks = Array.init max_chunks (fun _ -> Atomic.make None);
    next = Atomic.make 0;
    free_list = Atomic.make [];
    freed = Atomic.make 0;
    allocated = Atomic.make 0;
    meta = Atomic.make None;
  }

let new_chunk () =
  Array.init chunk_size (fun _ -> { content = Atomic.make None; latch = Mutex.create () })

let ensure_chunk t ci =
  if ci >= max_chunks then failwith "Store: out of pages";
  match Atomic.get t.chunks.(ci) with
  | Some c -> c
  | None ->
      let fresh = new_chunk () in
      if Atomic.compare_and_set t.chunks.(ci) None (Some fresh) then fresh
      else (
        match Atomic.get t.chunks.(ci) with Some c -> c | None -> assert false)

let slot t ptr =
  let ci = ptr lsr chunk_bits in
  match Atomic.get t.chunks.(ci) with
  | Some c -> c.(ptr land (chunk_size - 1))
  | None -> invalid_arg (Printf.sprintf "Store: page %d not allocated" ptr)

let pop_free t =
  let rec go () =
    match Atomic.get t.free_list with
    | [] -> None
    | p :: rest as old ->
        if Atomic.compare_and_set t.free_list old rest then Some p else go ()
  in
  go ()

let push_free t p =
  let rec go () =
    let old = Atomic.get t.free_list in
    if not (Atomic.compare_and_set t.free_list old (p :: old)) then go ()
  in
  go ()

(** Allocate a page initialised to [node]; the id is valid for [get] in all
    domains as soon as this returns. *)
let alloc t node =
  Atomic.incr t.allocated;
  match pop_free t with
  | Some p ->
      Atomic.set (slot t p).content (Some node);
      p
  | None ->
      let p = Atomic.fetch_and_add t.next 1 in
      let chunk = ensure_chunk t (p lsr chunk_bits) in
      Atomic.set chunk.(p land (chunk_size - 1)).content (Some node);
      p

(** Reserve a page id without contents; the caller must [put] before the
    id becomes reachable by any other process (e.g. a split writes the new
    right sibling before linking it, Fig 3). *)
let reserve t =
  Atomic.incr t.allocated;
  match pop_free t with
  | Some p -> p
  | None ->
      let p = Atomic.fetch_and_add t.next 1 in
      ignore (ensure_chunk t (p lsr chunk_bits));
      p

exception Freed_page = Page_store.Freed_page

(** Indivisible read of a page. Raises {!Freed_page} on a reclaimed page —
    with correct epoch protection this never happens; tests rely on the
    exception to catch reclamation bugs. *)
let get t ptr =
  match Atomic.get (slot t ptr).content with
  | Some n -> n
  | None -> raise (Freed_page ptr)

(** Indivisible rewrite of a page. *)
let put t ptr node = Atomic.set (slot t ptr).content (Some node)

(** Page latch: blocks other lockers, never blocks readers (§2.2). *)
let lock t ptr = Mutex.lock (slot t ptr).latch

let unlock t ptr = Mutex.unlock (slot t ptr).latch
let try_lock t ptr = Mutex.try_lock (slot t ptr).latch

(** Return a page to the allocator. Only call once its deletion epoch has
    passed (see {!Epoch}); the contents become unreadable immediately. *)
let release t ptr =
  Atomic.set (slot t ptr).content None;
  Atomic.incr t.freed;
  push_free t ptr

(** Pages currently holding a node (allocated minus freed). *)
let live_count t = Atomic.get t.allocated - Atomic.get t.freed

let total_allocated t = Atomic.get t.allocated
let total_freed t = Atomic.get t.freed

(** Iterate over all live pages. Only meaningful when quiescent. *)
let iter t f =
  let frontier = Atomic.get t.next in
  for p = 0 to frontier - 1 do
    match Atomic.get t.chunks.(p lsr chunk_bits) with
    | None -> ()
    | Some c -> (
        match Atomic.get c.(p land (chunk_size - 1)).content with
        | Some n -> f p n
        | None -> ())
  done

let set_meta t bytes = Atomic.set t.meta (Some (Bytes.copy bytes))
let get_meta t = Atomic.get t.meta
let sync _t = ()
let commit _t = ()

(** {!Page_store.S} view of the store at one key type, so the functorized
    tree runs on it. [type t = K.t t] is kept transparent: code written
    against ['k Store.t] directly (tests poking at handles) and code
    going through the functor see the same type. *)
module For_key (K : Key.S) : Page_store.S with type key = K.t and type t = K.t t =
struct
  type key = K.t
  type nonrec t = K.t t

  let create = create
  let alloc = alloc
  let reserve = reserve
  let get = get
  let put = put
  let lock = lock
  let unlock = unlock
  let try_lock = try_lock
  let release = release
  let live_count = live_count
  let total_allocated = total_allocated
  let total_freed = total_freed
  let iter = iter
  let set_meta = set_meta
  let get_meta = get_meta
  let sync = sync
  let commit = commit
end
