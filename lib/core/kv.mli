(** Key–value store: the Sagiv tree as a dense index over a record heap
    ({!Repro_storage.Record_store}). Gets and range folds are lock-free;
    puts and removes hold one page latch at a time. Record-slot reuse is
    deferred past in-flight readers by a dedicated epoch manager (§5.3
    applied to records). *)

open Repro_storage

module Make (K : Key.S) : sig
  type t
  type ctx = Handle.ctx

  val ctx : slot:int -> ctx
  val create : ?order:int -> ?enqueue_on_delete:bool -> unit -> t

  val tree : t -> (K.t, K.t Store.t) Handle.t
  (** The underlying index, for compaction workers and validation. *)

  val get : t -> ctx -> K.t -> string option
  val put : t -> ctx -> K.t -> string -> unit
  (** Insert or overwrite. *)

  val remove : t -> ctx -> K.t -> bool

  val fold_range :
    t -> ctx -> lo:K.t -> hi:K.t -> init:'a -> ('a -> K.t -> string -> 'a) -> 'a

  val bindings : t -> ctx -> lo:K.t -> hi:K.t -> (K.t * string) list
  val cardinal : t -> int
  val height : t -> int

  val reclaim : t -> int
  (** Release retired record slots and tree pages past their grace
      periods; returns the total released. *)

  val bytes_stored : t -> int
  val live_records : t -> int

  val commit : t -> unit
  (** Durably commit every completed operation through the tree's page
      store (see {!Sagiv.Make_on_store.commit}); a no-op beyond metadata
      recording over the in-memory substrate. *)

  exception Corrupt of string

  val save : t -> Bytes.t
  (** Logical dump of all bindings (quiescent). *)

  val load : Bytes.t -> t
  (** Restore a dump into a fresh, bulk-loaded (packed) store.
      @raise Corrupt on a damaged dump. *)
end
