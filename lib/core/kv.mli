(** Key–value store: the Sagiv tree as a dense index over a
    version-chained record heap ({!Repro_storage.Record_store}) — the
    string-valued face of {!Mvcc}. Gets and range folds are lock-free;
    puts and removes hold one page latch at a time and append
    epoch-stamped versions, so {!snapshot} yields consistent cuts that
    never stall writers. Record-slot reuse is deferred past in-flight
    readers by the tree's epoch manager (§5.3 applied to records). *)

open Repro_storage

module Make (K : Key.S) : sig
  type t
  type ctx = Handle.ctx

  val ctx : slot:int -> ctx
  val create : ?order:int -> ?enqueue_on_delete:bool -> unit -> t

  val tree : t -> (K.t, K.t Store.t) Handle.t
  (** The underlying index, for compaction workers and validation. *)

  val get : t -> ctx -> K.t -> string option
  val put : t -> ctx -> K.t -> string -> unit
  (** Insert or overwrite (appends a version; pinned readers keep what
      they saw). *)

  val remove : t -> ctx -> K.t -> bool
  (** Logical delete: the pair carries a tombstone until {!reclaim}
      vacuums it. *)

  val fold_range :
    t -> ctx -> lo:K.t -> hi:K.t -> init:'a -> ('a -> K.t -> string -> 'a) -> 'a
  (** Current-time scan — weak (not a cut); see {!snap_fold_range}. *)

  val bindings : t -> ctx -> lo:K.t -> hi:K.t -> (K.t * string) list
  val cardinal : t -> int
  val height : t -> int

  (** {1 Snapshots} *)

  type snap

  val snapshot : t -> snap
  (** Pin a consistent cut — O(1), never blocks writers. *)

  val release : snap -> unit
  val snap_epoch : snap -> int
  val snap_get : t -> snap -> ctx -> K.t -> string option

  val snap_fold_range :
    t ->
    snap ->
    ctx ->
    lo:K.t ->
    hi:K.t ->
    init:'a ->
    ('a -> K.t -> string -> 'a) ->
    'a
  (** Point-in-time fold: exactly the bindings live at the cut. *)

  val snap_bindings : t -> snap -> ctx -> lo:K.t -> hi:K.t -> (K.t * string) list

  val reclaim : t -> ctx -> int
  (** Vacuum dead pairs and cold version tails, then release retired
      record slots and tree pages past their grace periods; returns the
      number of pairs physically removed. Needs a worker context because
      removing a dead pair is a tree delete. *)

  val bytes_stored : t -> int
  val live_records : t -> int
  val live_versions : t -> int
  val pruned_versions : t -> int

  val commit : t -> unit
  (** Durably commit every completed operation through the tree's page
      store (see {!Sagiv.Make_on_store.commit}); a no-op beyond metadata
      recording over the in-memory substrate. *)

  exception Corrupt of string

  val save : t -> Bytes.t
  (** Logical dump of all live bindings (quiescent); tombstones dropped. *)

  val load : Bytes.t -> t
  (** Restore a dump into a fresh store.
      @raise Corrupt on a damaged dump. *)
end
