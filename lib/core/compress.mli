(** The scanning compression process (§5.1–5.2, Fig 7): walks each level
    via links under the parents one level up, rearranging disjoint pairs
    of adjacent siblings that contain a sparse node. Runs concurrently
    with searches, insertions and deletions; locks three nodes at a time. *)

open Repro_storage

module Make_on_store (K : Key.S) (S : Page_store.S with type key = K.t) : sig
  val compress_level :
    ?phase:int -> (K.t, S.t) Handle.t -> Handle.ctx -> level:int -> int
  (** One pass over level [level] (children), driven from level+1
      (parents). Returns the number of merges + redistributions. Pairs
      whose right member's pointer is still pending insertion into the
      parent are waited for (bounded backoff) or skipped for this pass.
      [phase] = 1 staggers the disjoint pairing by one child — an
      extension beyond Fig 7 that removes the paper's odd-child blind
      spot when phases alternate. *)

  val compress_pass : ?phase:int -> (K.t, S.t) Handle.t -> Handle.ctx -> int
  (** All levels bottom-up, then root-collapse attempts. Returns the
      number of structural changes. *)

  val compress_to_fixpoint :
    ?max_passes:int -> (K.t, S.t) Handle.t -> Handle.ctx -> int
  (** Run alternating-phase passes until one changeless pass in each
      phase; returns how many passes changed something. Emptying a tree
      takes O(log2 n) passes (§5.1, experiment E7). *)
end

module Make (K : Key.S) : module type of Make_on_store (K) (Store.For_key (K))
