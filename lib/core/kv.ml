(** Key–value store: the dense index (Sagiv tree) over an actual record
    heap — now the string-valued face of {!Mvcc}.

    The paper's tree maps keys to record {e pointers} and assumes the
    records exist (§3.1); this module completes the picture with
    multiversioned records: puts append epoch-stamped versions, removes
    append tombstones, and {!snapshot} hands out consistent cuts that
    cost writers nothing. Gets are lock-free; puts/removes hold one page
    latch at a time, exactly as the underlying operations do.

    Record slots and stale versions are reclaimed by {!reclaim}
    (vacuum + epoch grace), which needs a worker context because
    removing a dead pair is a tree operation. *)

open Repro_storage

module Make (K : Key.S) = struct
  module M = Mvcc.Make (K)
  module T = M.T

  type t = string M.t
  type ctx = Handle.ctx

  let ctx = Handle.ctx

  let create ?order ?enqueue_on_delete () =
    M.create ?order ?enqueue_on_delete ~size:String.length ()

  let tree t = M.tree t

  (** [get t ctx k] is the value bound to [k], lock-free. *)
  let get t (ctx : ctx) k = M.get t ctx k

  (** [put t ctx k v] binds [k] to [v], inserting or overwriting (a new
      version on [k]'s chain — readers pinned to older epochs keep the
      value they started with). *)
  let put t (ctx : ctx) k v = M.upsert t ctx k v

  (** [remove t ctx k] unbinds [k]; [true] when it was bound. The pair
      carries a tombstone until {!reclaim} vacuums it. *)
  let remove t (ctx : ctx) k = M.delete t ctx k

  (** Ordered fold over current bindings in [lo <= key <= hi] (same weak
      contract as {!Sagiv.Make.fold_range}; use {!snapshot} +
      {!snap_fold_range} for a consistent cut). *)
  let fold_range t (ctx : ctx) ~lo ~hi ~init f =
    M.fold_range t ctx ~lo ~hi ~init f

  let bindings t (ctx : ctx) ~lo ~hi =
    List.rev (fold_range t ctx ~lo ~hi ~init:[] (fun acc k v -> (k, v) :: acc))

  let cardinal t = M.cardinal t
  let height t = T.height (M.tree t)

  (* -- snapshots -- *)

  type snap = M.snap

  let snapshot t = M.snapshot t
  let release s = M.release s
  let snap_epoch s = M.snap_epoch s
  let snap_get t s (ctx : ctx) k = M.snap_get t s ctx k

  let snap_fold_range t s (ctx : ctx) ~lo ~hi ~init f =
    M.snap_fold_range t s ctx ~lo ~hi ~init f

  let snap_bindings t s (ctx : ctx) ~lo ~hi = M.snap_range t s ctx ~lo ~hi

  (** Vacuum dead pairs and stale versions, then release every record
      slot and tree page whose grace period has passed. *)
  let reclaim t (ctx : ctx) =
    (* vacuum first: it retires the slots this call's reclaim then frees *)
    let removed = M.vacuum t ctx in
    removed + M.reclaim t

  let bytes_stored t = M.bytes_stored t
  let live_records t = Record_store.live_count (M.records t)
  let live_versions t = M.live_versions t
  let pruned_versions t = M.pruned_versions t

  (** Durably commit every completed operation through the tree's page
      store ({!Sagiv.Make_on_store.commit}). Over the in-memory {!Store}
      this records the geometry and no-ops; the call marks the durability
      point for clients written against the KV API, so they run unchanged
      on a WAL-backed substrate. *)
  let commit t = T.commit (M.tree t)

  (* -- logical dump / restore -- *)

  let dump_magic = 0x4B_56_44_31 (* "KVD1" *)

  exception Corrupt of string

  (** Serialise all live bindings (quiescent): keys through the page
      codec, values length-prefixed; tombstoned pairs are dropped — a
      dump is a compaction point. Restoring bulk-loads a fresh, packed
      store. *)
  let save t : Bytes.t =
    let buf = Buffer.create 4096 in
    Buffer.add_int32_le buf (Int32.of_int dump_magic);
    Buffer.add_int32_le buf (Int32.of_int (T.order (M.tree t)));
    let bindings =
      List.filter_map
        (fun (k, rptr) ->
          match Record_store.get (M.records t) rptr with
          | Some v -> Some (k, v)
          | None | (exception Record_store.Freed_record _) -> None)
        (T.to_list (M.tree t))
    in
    Buffer.add_int64_le buf (Int64.of_int (List.length bindings));
    List.iter
      (fun (k, v) ->
        K.encode buf k;
        Buffer.add_int32_le buf (Int32.of_int (String.length v));
        Buffer.add_string buf v)
      bindings;
    Buffer.to_bytes buf

  let load bytes : t =
    let pos = ref 0 in
    if Int32.to_int (Bytes.get_int32_le bytes 0) <> dump_magic then
      raise (Corrupt "bad KV dump magic");
    let order = Int32.to_int (Bytes.get_int32_le bytes 4) in
    let count = Int64.to_int (Bytes.get_int64_le bytes 8) in
    if order < 1 || count < 0 then raise (Corrupt "implausible KV dump header");
    pos := 16;
    let t = create ~order () in
    let c = ctx ~slot:0 in
    let pairs =
      List.init count (fun _ ->
          let k, p = K.decode bytes ~pos:!pos in
          let len = Int32.to_int (Bytes.get_int32_le bytes p) in
          if len < 0 || p + 4 + len > Bytes.length bytes then
            raise (Corrupt "truncated KV dump");
          let v = Bytes.sub_string bytes (p + 4) len in
          pos := p + 4 + len;
          (k, v))
    in
    List.iter (fun (k, v) -> put t c k v) pairs;
    t
end
