(** Key–value store: the dense index (Sagiv tree) over an actual record
    heap.

    The paper's tree maps keys to record {e pointers} and assumes the
    records exist (§3.1); this module completes the picture — values are
    stored in a {!Repro_storage.Record_store}, and the tree's pairs point
    at them. Gets are lock-free; puts/deletes hold one page latch at a
    time, exactly as the underlying operations do.

    Record slots are recycled, so a get racing a put/delete on the same
    key could otherwise chase a reused pointer; a dedicated epoch manager
    defers record reuse past all in-flight gets (the §5.3 scheme, applied
    to records). *)

open Repro_storage

module Make (K : Key.S) = struct
  module T = Sagiv.Make (K)

  type t = {
    tree : T.t;
    records : Record_store.t;
    record_epoch : Epoch.t;  (** guards record reads against slot reuse *)
  }

  type ctx = Handle.ctx

  let ctx = Handle.ctx

  let create ?order ?enqueue_on_delete () =
    {
      tree = T.create ?order ?enqueue_on_delete ();
      records = Record_store.create ();
      record_epoch = Epoch.create ();
    }

  let tree t = t.tree

  (** [get t ctx k] is the value bound to [k], lock-free. *)
  let get t (ctx : ctx) k =
    Epoch.with_pin t.record_epoch ~slot:ctx.Handle.slot (fun () ->
        match T.search t.tree ctx k with
        | None -> None
        | Some rptr -> Some (Record_store.get t.records rptr))

  (** [put t ctx k v] binds [k] to [v], inserting or overwriting. *)
  let put t (ctx : ctx) k v =
    let rptr = Record_store.put t.records v in
    match T.insert t.tree ctx k rptr with
    | `Ok -> ()
    | `Duplicate -> (
        match T.update t.tree ctx k rptr with
        | Some old -> Epoch.retire t.record_epoch old
        | None ->
            (* the key vanished between insert and update: bind it anew *)
            let rec retry () =
              match T.insert t.tree ctx k rptr with
              | `Ok -> ()
              | `Duplicate -> (
                  match T.update t.tree ctx k rptr with
                  | Some old -> Epoch.retire t.record_epoch old
                  | None -> retry ())
            in
            retry ())

  (** [remove t ctx k] unbinds [k]; [true] when it was bound. *)
  let remove t (ctx : ctx) k =
    match T.take t.tree ctx k with
    | Some rptr ->
        Epoch.retire t.record_epoch rptr;
        true
    | None -> false

  (** Ordered fold over bindings in [lo <= key <= hi] (same contract as
      {!Sagiv.Make.fold_range}). *)
  let fold_range t (ctx : ctx) ~lo ~hi ~init f =
    Epoch.with_pin t.record_epoch ~slot:ctx.Handle.slot (fun () ->
        T.fold_range t.tree ctx ~lo ~hi ~init (fun acc k rptr ->
            match Record_store.get t.records rptr with
            | v -> f acc k v
            | exception Record_store.Freed_record _ -> acc))

  let bindings t (ctx : ctx) ~lo ~hi =
    List.rev (fold_range t ctx ~lo ~hi ~init:[] (fun acc k v -> (k, v) :: acc))

  let cardinal t = T.cardinal t.tree
  let height t = T.height t.tree

  (** Release retired record slots and tree pages whose grace periods have
      passed. *)
  let reclaim t =
    Epoch.reclaim t.record_epoch ~release:(Record_store.free t.records)
    + T.reclaim t.tree

  let bytes_stored t = Record_store.bytes_stored t.records
  let live_records t = Record_store.live_count t.records

  (** Durably commit every completed operation through the tree's page
      store ({!Sagiv.Make_on_store.commit}). Over the in-memory {!Store}
      this records the geometry and no-ops; the call marks the durability
      point for clients written against the KV API, so they run unchanged
      on a WAL-backed substrate. *)
  let commit t = T.commit t.tree

  (* -- logical dump / restore -- *)

  let dump_magic = 0x4B_56_44_31 (* "KVD1" *)

  exception Corrupt of string

  (** Serialise all bindings (quiescent): keys through the page codec,
      values length-prefixed. Restoring bulk-loads a fresh, packed store. *)
  let save t : Bytes.t =
    let buf = Buffer.create 4096 in
    Buffer.add_int32_le buf (Int32.of_int dump_magic);
    Buffer.add_int32_le buf (Int32.of_int (T.order t.tree));
    let bindings = T.to_list t.tree in
    Buffer.add_int64_le buf (Int64.of_int (List.length bindings));
    List.iter
      (fun (k, rptr) ->
        K.encode buf k;
        let v = Record_store.get t.records rptr in
        Buffer.add_int32_le buf (Int32.of_int (String.length v));
        Buffer.add_string buf v)
      bindings;
    Buffer.to_bytes buf

  let load bytes : t =
    let pos = ref 0 in
    if Int32.to_int (Bytes.get_int32_le bytes 0) <> dump_magic then
      raise (Corrupt "bad KV dump magic");
    let order = Int32.to_int (Bytes.get_int32_le bytes 4) in
    let count = Int64.to_int (Bytes.get_int64_le bytes 8) in
    if order < 1 || count < 0 then raise (Corrupt "implausible KV dump header");
    pos := 16;
    let records = Record_store.create () in
    let pairs =
      List.init count (fun _ ->
          let k, p = K.decode bytes ~pos:!pos in
          let len = Int32.to_int (Bytes.get_int32_le bytes p) in
          if len < 0 || p + 4 + len > Bytes.length bytes then
            raise (Corrupt "truncated KV dump");
          let v = Bytes.sub_string bytes (p + 4) len in
          pos := p + 4 + len;
          (k, Record_store.put records v))
    in
    { tree = T.of_sorted ~order pairs; records; record_epoch = Epoch.create () }
end
