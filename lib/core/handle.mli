(** Shared tree representation: a plain polymorphic record so the
    operation functors ({!Sagiv}, {!Compress}, {!Compactor}, {!Validate},
    {!Dump}, {!Snapshot}) act on one common type. ['k] is the key type,
    ['s] the {!Repro_storage.Page_store.S} backend's [t] ([K.t Store.t]
    in memory, [Paged_store.Make(K).t] on disk). Treat the fields as
    read-only unless you are extending the library. *)

open Repro_storage

type ('k, 's) t = {
  store : 's;
  prime : Prime_block.t;
  epoch : Epoch.t;
  order : int;  (** the paper's k: nodes hold between k and 2k pairs *)
  queue : 'k Cqueue.t;  (** shared compression work queue (§5.4) *)
  enqueue_on_delete : bool;
}

(** Per-worker operation context: the worker's epoch slot and its private
    statistics. One per domain; never shared between domains. *)
type ctx = { slot : int; stats : Stats.t }

val ctx : slot:int -> ctx
