(** Shared tree representation.

    The handle is a plain polymorphic record so that the operation modules
    ({!Sagiv}, {!Compress}, {!Compactor}, {!Validate}, {!Dump} — all
    functors over the key type and a {!Repro_storage.Page_store.S}
    backend) act on one common type without functor type-equality
    plumbing. ['k] is the key type; ['s] the page store (e.g.
    [K.t Store.t] in memory, [Paged_store.Make(K).t] on disk). *)

open Repro_storage

type ('k, 's) t = {
  store : 's;
  prime : Prime_block.t;
  epoch : Epoch.t;
  order : int;  (** k: minimum pairs per node; capacity is 2k *)
  queue : 'k Cqueue.t;  (** compression work queue (§5.4) *)
  enqueue_on_delete : bool;  (** push sparse leaves onto [queue] after deletes *)
}

(** Per-worker operation context: the worker's epoch slot and its private
    statistics record. One per domain; never shared. *)
type ctx = { slot : int; stats : Stats.t }

let ctx ~slot = { slot; stats = Stats.create () }
