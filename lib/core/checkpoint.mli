(** Checkpointing a quiescent tree to a {!Repro_storage.Paged_file}:
    page 0 is the header, the node stream lives in a page chain (overflow-
    chain style), so checkpoints work over fixed-size disk pages with
    either the memory or the real-file backend. *)

open Repro_storage

exception Corrupt of string

module Make_on_store (K : Key.S) (S : Page_store.S with type key = K.t) : sig
  val save : (K.t, S.t) Handle.t -> Paged_file.t -> unit
  (** Write the tree into the paged file (page 0 becomes the header) and
      sync it. The tree must be quiescent. *)

  val save_online : (K.t, S.t) Handle.t -> Handle.ctx -> Paged_file.t -> unit
  (** {!save} with writers live: lock-free scan into a private packed
      tree, then a (by-construction quiescent) {!save} of that tree.
      Never stalls writers; exact for pairs stable across the scan. *)

  val load : Paged_file.t -> (K.t, S.t) Handle.t
  (** Rebuilds into a fresh [S.create ()] store.
      @raise Corrupt on a damaged checkpoint. *)
end

module Make (K : Key.S) : module type of Make_on_store (K) (Store.For_key (K))
