(** Debug pretty-printing of a quiescent tree. *)

open Repro_storage

module Make_on_store (K : Key.S) (S : Page_store.S with type key = K.t) = struct
  module N = Node.Make (K)
  open Handle

  let pp fmt (t : (K.t, S.t) Handle.t) =
    let prime = Prime_block.read t.prime in
    Format.fprintf fmt "@[<v>tree: height=%d root=%d order=%d@,"
      prime.Prime_block.levels (Prime_block.root prime) t.order;
    for i = 0 to prime.Prime_block.levels - 1 do
      let level = prime.Prime_block.levels - 1 - i in
      Format.fprintf fmt "level %d:@," level;
      (match Prime_block.leftmost_at prime ~level with
      | None -> Format.fprintf fmt "  (missing)@,"
      | Some p ->
          let rec go ptr =
            match (try Some (S.get t.store ptr) with Page_store.Freed_page _ -> None) with
            | None -> Format.fprintf fmt "  #%d <freed>@," ptr
            | Some n ->
                Format.fprintf fmt "  #%d %a@," ptr N.pp n;
                if not (Node.is_deleted n) then
                  match n.Node.link with Some q -> go q | None -> ()
          in
          go p);
      ()
    done;
    Format.fprintf fmt "@]"

  let to_string t = Format.asprintf "%a" pp t
  let print t = print_string (to_string t)
end

module Make (K : Key.S) = Make_on_store (K) (Store.For_key (K))
