(** Sagiv's B*-tree with overtaking: searches, insertions, deletions.

    The paper's headline property holds by construction here: {b an
    insertion locks only one node at any time}. After rewriting a split
    node the lock is released {e before} the parent is even located —
    updaters moving up may overtake each other freely (§3.1: pair
    insertions at a level never modify existing pairs, and pairs stay
    sorted, so upward propagation order is irrelevant).

    Searches and deletions follow Fig 4 / §4; insertion follows Figs 5–6
    including the root-split and empty-stack details of §3.3. Compression
    lives in {!Compress} (background scans) and {!Compactor} (queue-driven,
    §5.4); deletions feed the queue here when enabled. *)

open Repro_storage

module Make_on_store (K : Key.S) (S : Page_store.S with type key = K.t) = struct
  module N = Node.Make (K)
  module A = Access.Make_on_store (K) (S)
  open Handle

  type t = (K.t, S.t) Handle.t
  type nonrec ctx = ctx

  let ctx = Handle.ctx

  (** [create ~order ()] builds an empty tree. [order] is the paper's k:
      every non-root node keeps between k and 2k pairs.
      [enqueue_on_delete] controls whether deletions push sparse leaves
      onto the compression queue (§5.4); leave it off to get exactly the
      Lehman–Yao deletion regime the paper starts from (§4).
      [store] supplies the page store (default: a fresh [S.create ()]);
      it must be empty. *)
  let create ?(order = 8) ?(enqueue_on_delete = false) ?store () : t =
    if order < 1 then invalid_arg "Sagiv.create: order must be >= 1";
    let store = match store with Some s -> s | None -> S.create () in
    if S.live_count store <> 0 then
      invalid_arg "Sagiv.create: store not empty (use open_existing)";
    let root = S.alloc store (N.empty_root ()) in
    {
      store;
      prime = Prime_block.create ~root_ptr:root;
      epoch = Epoch.create ();
      order;
      queue = Cqueue.create ();
      enqueue_on_delete;
    }

  let order (t : t) = t.order

  (* Split [total] items into even-ish chunks: target size [cap], never
     above [hard_cap] (node capacity), and at least [min_fill] whenever
     more than one chunk exists — dropping the chunk count when an even
     split would dip below the minimum (e.g. 2k+1 items at fill 0.9). *)
  let chunk_sizes ~min_fill ~cap ~hard_cap total =
    if total = 0 then []
    else begin
      let want = (total + cap - 1) / cap in
      let most = max 1 (total / min_fill) in
      let least = (total + hard_cap - 1) / hard_cap in
      let nchunks = max least (min want most) in
      let base = total / nchunks and extra = total mod nchunks in
      List.init nchunks (fun i -> base + if i < extra then 1 else 0)
      |> List.map (fun s ->
             assert (s <= hard_cap && (nchunks = 1 || s >= min_fill));
             s)
    end

  let check_sorted pairs =
    let rec go = function
      | (a, _) :: ((b, _) :: _ as rest) ->
          if K.compare a b >= 0 then
            invalid_arg "Sagiv.of_sorted: keys must be strictly ascending";
          go rest
      | [ _ ] | [] -> ()
    in
    go pairs

  (* Shared bulk-construction core of {!of_sorted} and {!bulk_add}: pack
     the strictly ascending [pairs] bottom-up into [store] at [fill] of
     capacity and return the leftmost pointer of each level (leaf first,
     root last). Quiescent; the caller publishes the result. *)
  let build_levels ~order ~fill ~store (pairs : (K.t * Node.ptr) list) :
      Node.ptr array =
    (* target chunk size: fill fraction of capacity, at least 2 so every
       level strictly shrinks (a cap of 1 would never converge) *)
    let cap = max 2 (max order (int_of_float (fill *. float_of_int (2 * order)))) in
    let hard_cap = 2 * order in
    let total = List.length pairs in
    let split_chunks items =
      let sizes = chunk_sizes ~min_fill:order ~cap ~hard_cap (List.length items) in
      let rec go sizes items acc =
        match sizes with
        | [] ->
            assert (items = []);
            List.rev acc
        | s :: rest ->
            let chunk = ref [] and tail = ref items in
            for _ = 1 to s do
              match !tail with
              | x :: xs ->
                  chunk := x :: !chunk;
                  tail := xs
              | [] -> assert false
            done;
            go rest !tail (List.rev !chunk :: acc)
      in
      go sizes items []
    in
    (* Leaves. *)
    let leaf_level =
      if total = 0 then begin
        let p = S.alloc store (N.empty_root ()) in
        [ (p, Bound.Pos_inf) ]
      end
      else begin
        let chunks = split_chunks pairs in
        let ptrs = List.map (fun _ -> S.reserve store) chunks in
        let n = List.length chunks in
        let highs =
          List.mapi
            (fun i chunk ->
              if i = n - 1 then Bound.Pos_inf
              else Bound.Key (fst (List.nth chunk (List.length chunk - 1))))
            chunks
        in
        List.iteri
          (fun i chunk ->
            let low = if i = 0 then Bound.Neg_inf else List.nth highs (i - 1) in
            let node =
              {
                Node.level = 0;
                keys = Array.of_list (List.map fst chunk);
                ptrs = Array.of_list (List.map snd chunk);
                low;
                high = List.nth highs i;
                link = (if i = n - 1 then None else Some (List.nth ptrs (i + 1)));
                is_root = n = 1;
                state = Node.Live;
              }
            in
            S.put store (List.nth ptrs i) node)
          chunks;
        List.combine ptrs highs
      end
    in
    (* Internal levels: children are (ptr, high); a parent over a chunk of
       children has keys = highs of all children but the last. *)
    let rec build_up level children leftmosts =
      match children with
      | [ (root_ptr, _) ] -> (root_ptr, List.rev leftmosts)
      | _ ->
          let chunks = split_chunks children in
          let ptrs = List.map (fun _ -> S.reserve store) chunks in
          let n = List.length chunks in
          let highs =
            List.map (fun chunk -> snd (List.nth chunk (List.length chunk - 1))) chunks
          in
          List.iteri
            (fun i chunk ->
              let low = if i = 0 then Bound.Neg_inf else List.nth highs (i - 1) in
              let seps =
                List.filteri (fun j _ -> j < List.length chunk - 1) chunk
                |> List.map (fun (_, h) -> Bound.get_key h)
              in
              let node =
                {
                  Node.level;
                  keys = Array.of_list seps;
                  ptrs = Array.of_list (List.map fst chunk);
                  low;
                  high = List.nth highs i;
                  link = (if i = n - 1 then None else Some (List.nth ptrs (i + 1)));
                  is_root = n = 1;
                  state = Node.Live;
                }
              in
              S.put store (List.nth ptrs i) node)
            chunks;
          build_up (level + 1) (List.combine ptrs highs) (List.hd ptrs :: leftmosts)
    in
    let leftmost_leaf = fst (List.hd leaf_level) in
    let _root_ptr, upper_leftmosts = build_up 1 leaf_level [] in
    (* [upper_leftmosts] is bottom-up: levels 1..top; the root is last. *)
    Array.of_list (leftmost_leaf :: upper_leftmosts)

  (** Bulk-load a tree from strictly ascending (key, payload) pairs — a
      quiescent constructor that packs nodes to [fill] (default 0.9 of
      capacity) and never takes a lock. Orders of magnitude faster than
      repeated {!insert} and yields denser nodes.
      @raise Invalid_argument if the keys are not strictly ascending. *)
  let of_sorted ?(order = 8) ?(fill = 0.9) ?store (pairs : (K.t * Node.ptr) list) : t =
    if order < 1 then invalid_arg "Sagiv.of_sorted: order must be >= 1";
    if fill <= 0.0 || fill > 1.0 then invalid_arg "Sagiv.of_sorted: fill in (0, 1]";
    check_sorted pairs;
    let store = match store with Some s -> s | None -> S.create () in
    if S.live_count store <> 0 then
      invalid_arg "Sagiv.of_sorted: store not empty (use open_existing)";
    let leftmost = build_levels ~order ~fill ~store pairs in
    {
      store;
      prime = Prime_block.restore ~levels:(Array.length leftmost) ~leftmost;
      epoch = Epoch.create ();
      order;
      queue = Cqueue.create ();
      enqueue_on_delete = false;
    }

  (** [bulk_add t pairs] packs strictly ascending [pairs] into an
      {e empty} tree in place — {!of_sorted}'s fast path for callers
      handed an already-created handle (preload). When the tree is not
      empty it returns [false] without touching anything and the caller
      falls back to {!insert}; on [true] the packed structure replaced
      the empty root. Quiescent only: no concurrent operation may be in
      flight, exactly as {!of_sorted}.
      @raise Invalid_argument if the keys are not strictly ascending. *)
  let bulk_add ?(fill = 0.9) (t : t) (pairs : (K.t * Node.ptr) list) : bool =
    if fill <= 0.0 || fill > 1.0 then invalid_arg "Sagiv.bulk_add: fill in (0, 1]";
    check_sorted pairs;
    let snap = Prime_block.read t.prime in
    let root_ptr = Prime_block.root snap in
    if
      snap.Prime_block.levels <> 1
      || Array.length (S.get t.store root_ptr).Node.keys > 0
    then false
    else if pairs = [] then true
    else begin
      let leftmost = build_levels ~order:t.order ~fill ~store:t.store pairs in
      Prime_block.install t.prime ~levels:(Array.length leftmost) ~leftmost;
      S.release t.store root_ptr;
      true
    end

  (** [search t ctx k] returns the record pointer stored with [k], without
      taking any lock (§2.2: locks never block readers; readers never
      lock). *)
  let search (t : t) (ctx : ctx) k =
    ctx.stats.Stats.ops <- ctx.stats.Stats.ops + 1;
    Epoch.with_pin t.epoch ~slot:ctx.slot (fun () ->
        let _ptr, leaf, _stack =
          A.locate t ctx (Bound.Key k) ~to_level:0 ~on_missing:A.Wait
        in
        N.leaf_find leaf k)

  (** Insertion result: [`Ok] or [`Duplicate] when [k] was already present
      (the tree is a dense index: one pair per key value). *)
  let insert (t : t) (ctx : ctx) k payload : [ `Ok | `Duplicate ] =
    ctx.stats.Stats.ops <- ctx.stats.Stats.ops + 1;
    Epoch.with_pin t.epoch ~slot:ctx.slot (fun () ->
        (* Insert the pair (ikey, iptr) at [level], then propagate splits
           upwards. Exactly one page latch is held at any point in this
           loop — the paper's central claim. *)
        let rec insert_level ~level ~ikey ~iptr ?start ~stack () =
          let target = Bound.Key ikey in
          let aptr, a, stack =
            A.acquire t ctx target ~level ~on_missing:A.Wait ?start ~stack ()
          in
          if level = 0 && N.mem a ikey then begin
            A.unlock t ctx aptr;
            `Duplicate
          end
          else if Node.is_safe ~order:t.order a then begin
            (* insert-into-safe *)
            let a' =
              if level = 0 then N.leaf_insert a ikey iptr else N.internal_insert a ikey iptr
            in
            A.put t ctx aptr a';
            A.unlock t ctx aptr;
            `Ok
          end
          else if not a.Node.is_root then begin
            (* insert-into-unsafe: write the new right sibling first, then
               rewrite A in one indivisible step (Fig 3), release A's lock,
               and only then go after the parent. *)
            let bptr = S.reserve t.store in
            let a', b =
              if level = 0 then N.leaf_split a ikey iptr ~right_ptr:bptr
              else N.internal_split a ikey iptr ~right_ptr:bptr
            in
            A.put t ctx bptr b;
            A.put t ctx aptr a';
            ctx.stats.Stats.splits <- ctx.stats.Stats.splits + 1;
            A.unlock t ctx aptr;
            let sep = Bound.get_key a'.Node.high in
            let start, stack =
              match stack with p :: rest -> (Some p, rest) | [] -> (None, [])
            in
            insert_level ~level:(level + 1) ~ikey:sep ~iptr:bptr ?start ~stack ()
          end
          else begin
            (* insert-into-unsafe-root: split, then create the new root and
               rewrite the prime block while still holding A's lock, so two
               roots can never be created simultaneously (§3.3). *)
            let bptr = S.reserve t.store in
            let a', b =
              if level = 0 then N.leaf_split a ikey iptr ~right_ptr:bptr
              else N.internal_split a ikey iptr ~right_ptr:bptr
            in
            A.put t ctx bptr b;
            A.put t ctx aptr a';
            ctx.stats.Stats.splits <- ctx.stats.Stats.splits + 1;
            let sep = Bound.get_key a'.Node.high in
            let rptr =
              S.alloc t.store
                (N.new_root ~level:(level + 1) ~left_ptr:aptr ~right_ptr:bptr ~sep)
            in
            Prime_block.push_root t.prime ~root_ptr:rptr;
            A.unlock t ctx aptr;
            `Ok
          end
        in
        let lptr, _leaf, stack =
          A.locate t ctx (Bound.Key k) ~to_level:0 ~on_missing:A.Wait
        in
        insert_level ~level:0 ~ikey:k ~iptr:payload ~start:lptr ~stack ())

  (** [take t ctx k] removes [k]'s pair from its leaf by rewriting the
      leaf (§4) and returns the removed record pointer — for callers that
      own the records (e.g. {!Kv}). No restructuring happens here; when
      [enqueue_on_delete] is set and the leaf drops below k pairs, it is
      pushed onto the compression queue while its lock is still held
      (§5.4). *)
  let take (t : t) (ctx : ctx) k : Node.ptr option =
    ctx.stats.Stats.ops <- ctx.stats.Stats.ops + 1;
    Epoch.with_pin t.epoch ~slot:ctx.slot (fun () ->
        let lptr, _leaf, stack =
          A.locate t ctx (Bound.Key k) ~to_level:0 ~on_missing:A.Wait
        in
        let aptr, a, stack =
          A.acquire t ctx (Bound.Key k) ~level:0 ~on_missing:A.Wait ~start:lptr ~stack ()
        in
        let removed =
          match N.leaf_find a k with
          | None -> None
          | Some old -> (
              match N.leaf_delete a k with
              | None -> None
              | Some a' ->
                  A.put t ctx aptr a';
                  if
                    t.enqueue_on_delete
                    && Node.is_sparse ~order:t.order a'
                    && not a'.Node.is_root
                  then begin
                    Cqueue.push t.queue ~update:true ~ptr:aptr ~level:0
                      ~high:a'.Node.high ~stack ~stamp:0;
                    ctx.stats.Stats.enqueued <- ctx.stats.Stats.enqueued + 1
                  end;
                  Some old)
        in
        A.unlock t ctx aptr;
        removed)

  (** [delete t ctx k] is {!take} without the pointer: [true] when the key
      was present. *)
  let delete (t : t) (ctx : ctx) k : bool = take t ctx k <> None

  (** [update t ctx k payload] atomically repoints [k]'s pair at a new
      record (one leaf rewrite under one lock — the search structure is
      untouched). Returns the {e old} record pointer, or [None] when [k]
      is absent. *)
  let update (t : t) (ctx : ctx) k payload : Node.ptr option =
    ctx.stats.Stats.ops <- ctx.stats.Stats.ops + 1;
    Epoch.with_pin t.epoch ~slot:ctx.slot (fun () ->
        let lptr, _leaf, stack =
          A.locate t ctx (Bound.Key k) ~to_level:0 ~on_missing:A.Wait
        in
        let aptr, a, _stack =
          A.acquire t ctx (Bound.Key k) ~level:0 ~on_missing:A.Wait ~start:lptr ~stack ()
        in
        match N.leaf_set_payload a k payload with
        | None ->
            A.unlock t ctx aptr;
            None
        | Some (a', old) ->
            A.put t ctx aptr a';
            A.unlock t ctx aptr;
            Some old)

  (** [fold_range t ctx ~lo ~hi ~init f] folds [f] over the pairs with
      [lo <= key <= hi] in ascending order, lock-free, by walking the leaf
      chain — the access pattern the B-link structure exists to serve
      (§2.1 footnote 3: the links "facilitate easy sequential traversal of
      the leaves").

      Concurrency contract: each leaf is read as one atomic snapshot, keys
      are emitted in strictly ascending order exactly once, and every pair
      that is present for the whole duration of the scan is emitted.
      Pairs inserted, deleted or moved leftwards by a concurrent
      compression {e during} the scan may or may not be observed (scans
      are not serialisable — the paper only serialises point operations).
      On a quiescent tree the scan is exact. *)
  let fold_range (t : t) (ctx : ctx) ~lo ~hi ~init f =
    if K.compare lo hi > 0 then init
    else begin
      ctx.stats.Stats.ops <- ctx.stats.Stats.ops + 1;
      Epoch.with_pin t.epoch ~slot:ctx.slot (fun () ->
          let ptr, _leaf, _stack =
            A.locate t ctx (Bound.Key lo) ~to_level:0 ~on_missing:A.Wait
          in
          (* last = greatest key emitted; guards against duplicates when a
             concurrent redistribution shifts pairs between snapshots. *)
          let rec walk ptr last acc =
            match
              (try `Node (S.get t.store ptr) with Page_store.Freed_page _ -> `Gone)
            with
            | `Gone -> acc
            | `Node n -> (
                match n.Node.state with
                | Node.Deleted fwd ->
                    ctx.stats.Stats.fwd_follows <- ctx.stats.Stats.fwd_follows + 1;
                    if fwd = Node.nil then acc else walk fwd last acc
                | Node.Live ->
                    let last = ref last and acc = ref acc in
                    for i = 0 to Node.nkeys n - 1 do
                      let k = n.Node.keys.(i) in
                      if
                        K.compare k lo >= 0
                        && K.compare k hi <= 0
                        && (match !last with None -> true | Some l -> K.compare k l > 0)
                      then begin
                        acc := f !acc k n.Node.ptrs.(i);
                        last := Some k
                      end
                    done;
                    (* done once this node's range reaches hi *)
                    if Bound.compare_key K.compare hi n.Node.high <= 0 then !acc
                    else begin
                      match n.Node.link with
                      | Some p ->
                          ctx.stats.Stats.link_follows <- ctx.stats.Stats.link_follows + 1;
                          walk p !last !acc
                      | None -> !acc
                    end)
          in
          walk ptr None init)
    end

  (** [range t ctx ~lo ~hi] is the pairs with [lo <= key <= hi], ascending. *)
  let range (t : t) (ctx : ctx) ~lo ~hi =
    List.rev (fold_range t ctx ~lo ~hi ~init:[] (fun acc k p -> (k, p) :: acc))

  (** [fold_all t ctx ~init f] folds over {e every} pair in ascending key
      order — {!fold_range} without bounds, starting at the leftmost leaf
      instead of a locate. Same lock-free concurrency contract: each leaf
      read as one snapshot, strictly ascending emission, pairs present
      for the whole scan all emitted; concurrent movers may or may not
      be seen. The online save/validate paths scan with this. *)
  let fold_all (t : t) (ctx : ctx) ~init f =
    ctx.stats.Stats.ops <- ctx.stats.Stats.ops + 1;
    Epoch.with_pin t.epoch ~slot:ctx.slot (fun () ->
        let rec walk ptr last acc =
          match
            (try `Node (S.get t.store ptr) with Page_store.Freed_page _ -> `Gone)
          with
          | `Gone -> acc
          | `Node n -> (
              match n.Node.state with
              | Node.Deleted fwd ->
                  ctx.stats.Stats.fwd_follows <- ctx.stats.Stats.fwd_follows + 1;
                  if fwd = Node.nil then acc else walk fwd last acc
              | Node.Live -> (
                  let last = ref last and acc = ref acc in
                  for i = 0 to Node.nkeys n - 1 do
                    let k = n.Node.keys.(i) in
                    if match !last with None -> true | Some l -> K.compare k l > 0
                    then begin
                      acc := f !acc k n.Node.ptrs.(i);
                      last := Some k
                    end
                  done;
                  match n.Node.link with
                  | Some p ->
                      ctx.stats.Stats.link_follows <- ctx.stats.Stats.link_follows + 1;
                      walk p !last !acc
                  | None -> !acc))
        in
        match Prime_block.leftmost_at (Prime_block.read t.prime) ~level:0 with
        | Some p -> walk p None init
        | None -> init)

  (** Convenience: number of keys currently stored (walks the leaf chain;
      only meaningful when quiescent). *)
  let cardinal (t : t) =
    let prime = Prime_block.read t.prime in
    let rec walk ptr acc =
      let n = S.get t.store ptr in
      let acc = acc + Node.nkeys n in
      match n.Node.link with Some p -> walk p acc | None -> acc
    in
    match Prime_block.leftmost_at prime ~level:0 with
    | Some p -> walk p 0
    | None -> 0

  (** All (key, payload) pairs in order (quiescent only). *)
  let to_list (t : t) =
    let prime = Prime_block.read t.prime in
    let rec walk ptr acc =
      let n = S.get t.store ptr in
      let acc =
        if Node.is_deleted n then acc
        else
          let here = ref [] in
          for i = Node.nkeys n - 1 downto 0 do
            here := (n.Node.keys.(i), n.Node.ptrs.(i)) :: !here
          done;
          acc @ !here
      in
      match n.Node.link with Some p -> walk p acc | None -> acc
    in
    match Prime_block.leftmost_at prime ~level:0 with
    | Some p -> walk p []
    | None -> []

  let height (t : t) = (Prime_block.read t.prime).Prime_block.levels

  (** Release pages whose grace period has passed (§5.3). *)
  let reclaim (t : t) = Epoch.reclaim t.epoch ~release:(S.release t.store)

  (* -- durability (quiescent): the tree's geometry and prime-block state
        live in the store's metadata blob, so a durable store can be
        closed and reopened without replay -- *)

  let meta_magic = 0x53_47_56_31 (* "SGV1" *)

  exception Corrupt of string

  let encode_meta (t : t) =
    let prime = Prime_block.read t.prime in
    let levels = prime.Prime_block.levels in
    let buf = Buffer.create (12 + (8 * levels)) in
    Buffer.add_int32_le buf (Int32.of_int meta_magic);
    Buffer.add_int32_le buf (Int32.of_int t.order);
    Buffer.add_int32_le buf (Int32.of_int levels);
    Array.iter
      (fun p -> Buffer.add_int64_le buf (Int64.of_int p))
      prime.Prime_block.leftmost;
    Buffer.to_bytes buf

  (** Persist the tree's geometry (order, levels, leftmost pointers) into
      the store's metadata and {!Page_store.S.sync} it. Quiescent only:
      no operation may be in flight and the queue should be drained. *)
  let flush (t : t) =
    S.set_meta t.store (encode_meta t);
    S.sync t.store

  (** Durably commit every completed operation: refresh the metadata blob
      (so the committed batch carries the geometry it needs — on a WAL
      store the blob travels in the same log batch as the page images)
      and {!Page_store.S.commit} the store. Unlike {!flush}, safe to call
      while operations run in other domains. *)
  let commit (t : t) =
    S.set_meta t.store (encode_meta t);
    S.commit t.store

  (** Rebuild a handle over a store that was {!flush}ed and reopened (or
      is still live from another handle — but never use two handles
      concurrently: they would have separate epochs and queues). *)
  let open_existing ?(enqueue_on_delete = false) (store : S.t) : t =
    match S.get_meta store with
    | None -> raise (Corrupt "Sagiv.open_existing: store has no tree metadata")
    | Some bytes ->
        if
          Bytes.length bytes < 12
          || Int32.to_int (Bytes.get_int32_le bytes 0) <> meta_magic
        then raise (Corrupt "Sagiv.open_existing: bad metadata magic");
        let order = Int32.to_int (Bytes.get_int32_le bytes 4) in
        let levels = Int32.to_int (Bytes.get_int32_le bytes 8) in
        if order < 1 || levels < 1 || Bytes.length bytes < 12 + (8 * levels) then
          raise (Corrupt "Sagiv.open_existing: implausible metadata");
        let leftmost =
          Array.init levels (fun i -> Int64.to_int (Bytes.get_int64_le bytes (12 + (8 * i))))
        in
        {
          store;
          prime = Prime_block.restore ~levels ~leftmost;
          epoch = Epoch.create ();
          order;
          queue = Cqueue.create ();
          enqueue_on_delete;
        }
end

(** The tree over the in-memory {!Store} — the historical interface; all
    pre-existing call sites ([Sagiv.Make (Key.Int)]) keep working. *)
module Make (K : Key.S) = Make_on_store (K) (Store.For_key (K))
