(** Structural invariant checker (quiescent trees).

    Verifies the "validity of the search structure" that Theorem 1's proof
    rests on: each non-leaf level is exactly the sequence of high values
    and links of the level below (Fig 2), every search reaches the right
    node using pointers alone, and the occupancy rules hold. Used heavily
    by tests after concurrent runs, and by the benches to report occupancy
    (experiment E3). *)

open Repro_storage

type level_stats = {
  level : int;
  nodes : int;
  keys : int;
  min_fill : float;
  avg_fill : float;  (** keys / capacity, averaged over nodes *)
}

type report = {
  height : int;
  total_keys : int;  (** keys stored in leaves *)
  total_nodes : int;  (** live nodes reachable from the root *)
  levels : level_stats list;
  encoded_bytes : int;  (** on-disk size of all reachable nodes *)
  errors : string list;
}

let ok report = report.errors = []

module Make_on_store (K : Key.S) (S : Page_store.S with type key = K.t) = struct
  module N = Node.Make (K)
  module C = Page_codec.Make (K)
  open Handle

  let bcompare = N.bcompare

  (* Walk one level's link chain, checking chain invariants and each
     node's local invariants. Returns the nodes as (ptr, node) list. *)
  let walk_level t ~order ~err ~level start =
    let rec go ptr prev_high acc =
      match (try `N (S.get t.store ptr) with Page_store.Freed_page _ -> `Freed) with
      | `Freed ->
          err (Printf.sprintf "level %d: chain reaches freed page %d" level ptr);
          List.rev acc
      | `N n ->
          if Node.is_deleted n then begin
            err (Printf.sprintf "level %d: chain reaches deleted page %d" level ptr);
            List.rev acc
          end
          else begin
            if n.Node.level <> level then
              err
                (Printf.sprintf "page %d: level field %d, expected %d" ptr n.Node.level
                   level);
            List.iter
              (fun e -> err (Printf.sprintf "page %d: %s" ptr e))
              (N.check ~order n);
            if bcompare n.Node.low prev_high <> 0 then
              err
                (Printf.sprintf "page %d: low %s <> left neighbour's high %s" ptr
                   (Bound.to_string K.to_string n.Node.low)
                   (Bound.to_string K.to_string prev_high));
            let acc = (ptr, n) :: acc in
            match n.Node.link with
            | Some p -> go p n.Node.high acc
            | None ->
                if bcompare n.Node.high Bound.Pos_inf <> 0 then
                  err (Printf.sprintf "page %d: rightmost node's high is not +inf" ptr);
                List.rev acc
          end
    in
    go start Bound.Neg_inf []

  (* The Fig 2 property: ignoring the leftmost pointer, the (key, ptr)
     pairs at level i+1 equal the (high, link) pairs at level i — i.e.
     each parent's child slots match the children's actual bounds. *)
  let check_parent_child t ~err parents children =
    let child_tbl = Hashtbl.create (List.length children) in
    List.iter (fun (p, n) -> Hashtbl.replace child_tbl p n) children;
    let covered = Hashtbl.create (List.length children) in
    List.iter
      (fun (fp, f) ->
        Array.iteri
          (fun j cp ->
            match Hashtbl.find_opt child_tbl cp with
            | None ->
                err
                  (Printf.sprintf "parent %d slot %d: child %d not on its level chain" fp
                     j cp)
            | Some c ->
                Hashtbl.replace covered cp ();
                if bcompare c.Node.low (N.slot_low f j) <> 0 then
                  err
                    (Printf.sprintf "parent %d slot %d: child %d low mismatch" fp j cp);
                if bcompare c.Node.high (N.slot_high f j) <> 0 then
                  err
                    (Printf.sprintf "parent %d slot %d: child %d high mismatch" fp j cp))
          f.Node.ptrs;
        ignore (S.get t.store fp))
      parents;
    List.iter
      (fun (cp, _) ->
        if not (Hashtbl.mem covered cp) then
          err (Printf.sprintf "child %d has no pointer from the level above" cp))
      children

  let level_stats ~order ~level nodes =
    let cap = float_of_int (2 * order) in
    let nnodes = List.length nodes in
    let keys = List.fold_left (fun acc (_, n) -> acc + Node.nkeys n) 0 nodes in
    let fills = List.map (fun (_, n) -> float_of_int (Node.nkeys n) /. cap) nodes in
    {
      level;
      nodes = nnodes;
      keys;
      min_fill = List.fold_left min 1.0 fills;
      avg_fill =
        (if nnodes = 0 then 0.0 else List.fold_left ( +. ) 0.0 fills /. float_of_int nnodes);
    }

  (** Full check. Call only when no operation is in flight. *)
  let check (t : (K.t, S.t) Handle.t) : report =
    let errors = ref [] in
    let err s = errors := s :: !errors in
    let prime = Prime_block.read t.prime in
    let height = prime.Prime_block.levels in
    let order = t.order in
    (* Walk all levels top-down, checking chains and parent/child
       agreement between consecutive levels. *)
    let levels_nodes =
      List.init height (fun i ->
          let level = height - 1 - i in
          match Prime_block.leftmost_at prime ~level with
          | None ->
              err (Printf.sprintf "prime block lacks leftmost pointer for level %d" level);
              (level, [])
          | Some p -> (level, walk_level t ~order ~err ~level p))
    in
    (* Root checks. *)
    (match levels_nodes with
    | (top, nodes) :: _ -> (
        match nodes with
        | [ (rp, r) ] ->
            if not r.Node.is_root then err (Printf.sprintf "root page %d: root bit unset" rp);
            if rp <> Prime_block.root prime then err "prime root <> leftmost of top level";
            ignore top
        | _ -> err (Printf.sprintf "top level has %d nodes, expected 1" (List.length nodes)))
    | [] -> err "empty prime block");
    List.iter
      (fun (_, nodes) ->
        List.iter
          (fun (p, n) ->
            if n.Node.is_root && p <> Prime_block.root prime then
              err (Printf.sprintf "page %d: stray root bit" p))
          nodes)
      levels_nodes;
    (* Parent/child agreement per consecutive pair. *)
    let rec pairs = function
      | (_, parents) :: ((_, children) :: _ as rest) ->
          check_parent_child t ~err parents children;
          pairs rest
      | [ _ ] | [] -> ()
    in
    pairs levels_nodes;
    (* Leaf key ordering across the whole chain. *)
    (match List.rev levels_nodes with
    | (0, leaves) :: _ ->
        let last = ref None in
        List.iter
          (fun (p, n) ->
            Array.iter
              (fun k ->
                (match !last with
                | Some k' when K.compare k' k >= 0 ->
                    err (Printf.sprintf "leaf %d: keys not globally increasing" p)
                | _ -> ());
                last := Some k)
              n.Node.keys)
          leaves
    | _ -> err "no leaf level");
    let total_keys =
      match List.rev levels_nodes with
      | (0, leaves) :: _ -> List.fold_left (fun acc (_, n) -> acc + Node.nkeys n) 0 leaves
      | _ -> 0
    in
    let total_nodes = List.fold_left (fun acc (_, ns) -> acc + List.length ns) 0 levels_nodes in
    let encoded_bytes =
      List.fold_left
        (fun acc (_, ns) ->
          List.fold_left (fun acc (_, n) -> acc + C.encoded_size n) acc ns)
        0 levels_nodes
    in
    {
      height;
      total_keys;
      total_nodes;
      levels = List.map (fun (l, ns) -> level_stats ~order ~level:l ns) levels_nodes;
      encoded_bytes;
      errors = List.rev !errors;
    }

  (** Page-leak check (quiescent): every live page in the store must be
      either reachable from the root through the level chains or a
      tombstone still awaiting epoch reclamation. Returns leaked page
      ids. Run after compaction + {!Repro_core.Sagiv.reclaim} to prove
      §5.3 releases everything. *)
  (* Live pages NOT reachable from the prime block through the level
     chains — the leak candidates of one walk over the current state. *)
  let unreachable_live (t : (K.t, S.t) Handle.t) : (Node.ptr, unit) Hashtbl.t =
    let prime = Prime_block.read t.Handle.prime in
    let reachable = Hashtbl.create 1024 in
    for level = 0 to prime.Prime_block.levels - 1 do
      match Prime_block.leftmost_at prime ~level with
      | None -> ()
      | Some p ->
          let rec go ptr =
            if not (Hashtbl.mem reachable ptr) then begin
              Hashtbl.replace reachable ptr ();
              match (try Some (S.get t.Handle.store ptr) with Page_store.Freed_page _ -> None) with
              | None -> ()
              | Some n -> (
                  match n.Node.link with Some q -> go q | None -> ())
            end
          in
          go p
    done;
    let leaked = Hashtbl.create 64 in
    S.iter t.Handle.store (fun p n ->
        (* version-record pages (durable MVCC) are owned by the Mvcc
           layer, not reachable through the level chains by design *)
        if
          n.Node.level <> Node.vrec_level
          && (not (Hashtbl.mem reachable p))
          && not (Node.is_deleted n)
        then Hashtbl.replace leaked p ());
    leaked

  let leak_check (t : (K.t, S.t) Handle.t) : Node.ptr list =
    (* [S.iter] below is only meaningful when quiescent; an epoch pin is
       cheap, definite evidence an operation is in flight, so refuse. *)
    if Epoch.min_pinned t.Handle.epoch <> max_int then
      invalid_arg "Validate.leak_check: tree not quiescent (operation in flight)";
    List.sort compare (Hashtbl.fold (fun p () acc -> p :: acc) (unreachable_live t) [])

  (** Online leak check — {!leak_check} with writers live. A single walk
      over-reports: a page mid-split (allocated but its left sibling's
      link not yet rewritten) or mid-retire is {e transiently}
      unreachable. So run [passes] (default 3) independent walks and
      intersect the candidate sets: a transient page is linked in (or
      freed) by the next walk, while a genuinely leaked page is
      unreachable in every one. Every returned page was live and
      unreachable across all passes. *)
  let leak_check_online ?(passes = 3) (t : (K.t, S.t) Handle.t) : Node.ptr list =
    let s = ref (unreachable_live t) in
    for _ = 2 to max 1 passes do
      Domain.cpu_relax ();
      let s' = unreachable_live t in
      let keep = Hashtbl.create (Hashtbl.length !s) in
      Hashtbl.iter (fun p () -> if Hashtbl.mem s' p then Hashtbl.replace keep p ()) !s;
      s := keep
    done;
    List.sort compare (Hashtbl.fold (fun p () acc -> p :: acc) !s [])

  (** Assert that every non-root node holds at least k pairs — the
      postcondition of a complete compression (§5.1), modulo the odd-child
      caveat which {!strict} toggles. *)
  let check_occupancy ?(strict = true) (t : (K.t, S.t) Handle.t) : string list =
    let r = check t in
    let errs = ref r.errors in
    if strict then begin
      let prime = Prime_block.read t.prime in
      let height = prime.Prime_block.levels in
      for level = 0 to height - 1 do
        match Prime_block.leftmost_at prime ~level with
        | None -> ()
        | Some p ->
            let rec go ptr =
              let n = S.get t.store ptr in
              if Node.is_sparse ~order:t.order n && not n.Node.is_root then
                errs :=
                  Printf.sprintf "page %d (level %d): %d pairs < k=%d" ptr level
                    (Node.nkeys n) t.order
                  :: !errs;
              match n.Node.link with Some q -> go q | None -> ()
            in
            go p
      done
    end;
    List.rev !errs
end

module Make (K : Key.S) = Make_on_store (K) (Store.For_key (K))
