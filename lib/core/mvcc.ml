(** Multi-version store: the Sagiv tree as a dense index over a
    {!Repro_storage.Record_store} of version chains, giving lock-free
    point-in-time snapshot reads with zero writer stalls.

    {2 Design}

    Tree nodes are rewritten in place (immutable values behind atomic
    slots), so the {e structure} cannot be versioned — the {e records}
    are. A pair (k, p) binds [k] to record slot [p] for the pair's whole
    lifetime; writers never repoint it. Logical state lives in the
    chain at [p]: an upsert appends a live version stamped with the
    writer's pinned epoch, a delete appends a tombstone, and the pair
    {e stays in the tree} so snapshots pinned before the delete still
    find it. Readers at epoch [E] resolve [p] to the newest version
    with [epoch <= E].

    {2 The snapshot cut}

    [snapshot] pins a dedicated epoch slot (publish-then-validate, so
    reclamation can never overtake it), then {e ticks} the clock to
    obtain the cut epoch [e], then waits until every worker pin exceeds
    [e]. Writers pinned at [<= e] started before the tick and their
    stamps are [<= e]; pins published after the tick validate against
    the advanced clock and stamp [> e]. Once the wait drains, reading
    at [e] is a consistent cut at the tick's instant: every operation
    whose effects are included began before the tick, every excluded
    one began after. Writers never wait — only the snapshot taker
    spins, and only for the ops already in flight at its tick.

    {2 Vacuum}

    Dead pairs (head tombstone below every pin) are physically removed
    by [vacuum], resolving the resurrection race with a [Sealed]
    barrier: re-check the pair still maps to the candidate slot, CAS
    the proven-dead chain to [Sealed] (late appenders get [`Gone] and
    retry from a fresh tree search), take the pair out of the tree,
    then retire the slot through the epoch manager so stale readers
    finish before the slot recycles. Chains that stay live just get
    their cold tails pruned.

    Several [t]s may share one {!Repro_storage.Epoch} ([?epoch] at
    create): a group snapshot then performs one pin + one tick + one
    wait and reads every sharing tree at the same cut — the cross-shard
    consistency {!Repro_baseline.Tree_intf} composes on. *)

open Repro_storage
module ISet = Set.Make (Int)

(* -- durable representation (backend-independent parts) --

   Version chains persist as {e version-record pages}: pseudo-nodes at
   {!Node.vrec_level} living in the tree's own page store, so they ride
   the same WAL batches, group commits, recovery replay and replication
   stream as the tree pages. Record slots are grouped ([2^group_bits]
   slots per group); each dirty group re-serializes into a flat int
   stream carried in the node's [ptrs] array (codec v3 varint-packs it),
   split across link-chained continuation pages when it outgrows the
   per-page budget. The head page has [is_root = true]; recovery
   rediscovers groups by scanning for heads — no durable directory, so
   the store's metadata blob stays tiny.

   Stream layout (ints): [group; nslots; per slot: tag (0 empty,
   1 sealed, 1+n chain of n versions); per version newest-first:
   epoch; 0 (tombstone) | 1, encoded value]. *)

type meta_ext = { group_bits : int; clock : int; horizon : int; frontier : int }

let ext_magic = 0x4D_56_52_31 (* "MVR1" *)
let ext_len = 4 + 1 + (3 * 8)

let encode_meta_ext e =
  let buf = Buffer.create ext_len in
  Buffer.add_int32_le buf (Int32.of_int ext_magic);
  Buffer.add_uint8 buf e.group_bits;
  Buffer.add_int64_le buf (Int64.of_int e.clock);
  Buffer.add_int64_le buf (Int64.of_int e.horizon);
  Buffer.add_int64_le buf (Int64.of_int e.frontier);
  Buffer.to_bytes buf

(** Parse the MVCC extension appended after the Sagiv metadata (whose
    own header gives the offset); [None] = a plain, unversioned store. *)
let decode_meta_ext bytes =
  if Bytes.length bytes < 12 then None
  else
    let levels = Int32.to_int (Bytes.get_int32_le bytes 8) in
    let base = 12 + (8 * levels) in
    if levels < 0 || Bytes.length bytes < base + ext_len then None
    else if Int32.to_int (Bytes.get_int32_le bytes base) <> ext_magic then None
    else
      Some
        {
          group_bits = Bytes.get_uint8 bytes (base + 4);
          clock = Int64.to_int (Bytes.get_int64_le bytes (base + 5));
          horizon = Int64.to_int (Bytes.get_int64_le bytes (base + 13));
          frontier = Int64.to_int (Bytes.get_int64_le bytes (base + 21));
        }

let chain_len v =
  let rec go n v =
    match v.Record_store.prev with None -> n | Some p -> go (n + 1) p
  in
  go 1 v

(** Serialize one group's slot states (read via [export], one atomic load
    per slot — chains are immutable past the head) into its int stream.
    Returns [(stream, versions, occupied)]; [not occupied] means every
    slot is empty and the group needs no pages at all. *)
let stream_of_group ~group ~group_bits ~enc export =
  let nslots = 1 lsl group_bits in
  let base = group lsl group_bits in
  let acc = ref [] in
  let push v = acc := v :: !acc in
  push group;
  push nslots;
  let versions = ref 0 and occupied = ref false in
  for i = 0 to nslots - 1 do
    match export (base + i) with
    | Record_store.Slot_empty -> push 0
    | Record_store.Slot_sealed ->
        occupied := true;
        push 1
    | Record_store.Slot_chain v ->
        occupied := true;
        let n = chain_len v in
        versions := !versions + n;
        push (n + 1);
        let rec walk v =
          push v.Record_store.epoch;
          (match v.Record_store.value with
          | None -> push 0
          | Some x ->
              push 1;
              push (enc x));
          match v.Record_store.prev with None -> () | Some p -> walk p
        in
        walk v
  done;
  (Array.of_list (List.rev !acc), !versions, !occupied)

exception Corrupt_vrec of string

(** Decode a group stream back into slot states:
    [(group, base_slot, states)]. Shared by recovery and the replica's
    snapshot reads. @raise Corrupt_vrec on a malformed stream. *)
let group_of_stream ~dec (stream : int array) =
  let len = Array.length stream in
  let pos = ref 0 in
  let next () =
    if !pos >= len then raise (Corrupt_vrec "truncated version-record stream");
    let v = stream.(!pos) in
    incr pos;
    v
  in
  let group = next () in
  let nslots = next () in
  if group < 0 || nslots <= 0 then raise (Corrupt_vrec "bad group header");
  let states =
    Array.init nslots (fun _ ->
        match next () with
        | 0 -> Record_store.Slot_empty
        | 1 -> Record_store.Slot_sealed
        | tag ->
            let n = tag - 1 in
            if n < 0 then raise (Corrupt_vrec "bad slot tag");
            let vs =
              Array.init n (fun _ ->
                  let epoch = next () in
                  let value =
                    match next () with 0 -> None | _ -> Some (dec (next ()))
                  in
                  (epoch, value))
            in
            let rec build i =
              if i >= n then None
              else
                let epoch, value = vs.(i) in
                Some { Record_store.epoch; value; prev = build (i + 1) }
            in
            (match build 0 with
            | Some v -> Record_store.Slot_chain v
            | None -> raise (Corrupt_vrec "empty chain tag")))
  in
  if !pos <> len then raise (Corrupt_vrec "trailing bytes in stream");
  (group, group * nslots, states)

module Make_on_store (K : Key.S) (S : Page_store.S with type key = K.t) =
struct
  module T = Sagiv.Make_on_store (K) (S)
  module R = Record_store

  (** Durable-mode state: the version heap shadows into vrec pages of
      [d_store] (the {e same} store the tree lives in). [d_mu] serialises
      persists; the page table / gauges are only touched under it. *)
  type 'v durable = {
    d_store : S.t;
    d_enc : 'v -> int;
    d_dec : int -> 'v;
    d_group_bits : int;
    d_page_ints : int;  (** ints per vrec page (codec-size budget) *)
    d_mu : Mutex.t;
    d_pages : (int, Node.ptr list) Hashtbl.t;  (** group -> head :: rest *)
    d_group_versions : (int, int) Hashtbl.t;
    mutable d_versions : int;  (** versions persisted at last commit *)
    mutable d_npages : int;  (** vrec pages currently allocated *)
    d_dirty : ISet.t Atomic.t;  (** groups mutated since last persist *)
  }

  type 'v t = {
    tree : T.t;
    records : 'v R.t;
    epoch : Epoch.t;
        (** the record/MVCC clock — distinct from the tree's own page
            epoch, and shareable across shards for group snapshots *)
    gc : (K.t * int) list Atomic.t;  (** vacuum candidates (Treiber stack) *)
    gc_len : int Atomic.t;
    retired : (int * int) list Atomic.t;
        (** sealed record slots in limbo as [(retire epoch, rptr)]. Kept
            here, not in the epoch manager's limbo: the {e clock} may be
            shared across shards but the {e slots} belong to this store,
            and a shared limbo would free one shard's slots into
            another's heap. *)
    durable : 'v durable option;
  }

  type ctx = Handle.ctx

  let ctx = Handle.ctx

  let create ?order ?enqueue_on_delete ?epoch ?size () =
    {
      tree = T.create ?order ?enqueue_on_delete ();
      records = R.create ?size ();
      epoch = (match epoch with Some e -> e | None -> Epoch.create ());
      gc = Atomic.make [];
      gc_len = Atomic.make 0;
      retired = Atomic.make [];
      durable = None;
    }

  let tree t = t.tree
  let records t = t.records
  let epoch t = t.epoch
  let durable t = Option.is_some t.durable

  (** Note a chain mutation for the next persist. Lock-free fast path:
      already-dirty groups cost one set lookup. *)
  let mark_dirty t rptr =
    match t.durable with
    | None -> ()
    | Some d ->
        let g = rptr lsr d.d_group_bits in
        let rec go () =
          let old = Atomic.get d.d_dirty in
          if not (ISet.mem g old) then
            if not (Atomic.compare_and_set d.d_dirty old (ISet.add g old))
            then go ()
        in
        go ()

  let note_gc t k ptr =
    let rec go () =
      let old = Atomic.get t.gc in
      if Atomic.compare_and_set t.gc old ((k, ptr) :: old) then
        Atomic.incr t.gc_len
      else go ()
    in
    go ()

  let with_stamp t (ctx : ctx) f =
    let e = Epoch.pin t.epoch ~slot:ctx.Handle.slot in
    Fun.protect
      ~finally:(fun () -> Epoch.unpin t.epoch ~slot:ctx.Handle.slot)
      (fun () -> f e)

  (** [get t ctx k] is the current value bound to [k], lock-free. The
      pin defers slot recycling, never blocks writers. *)
  let get t (ctx : ctx) k =
    with_stamp t ctx (fun _e ->
        match T.search t.tree ctx k with
        | None -> None
        | Some rptr -> R.get t.records rptr)

  (** Insert-if-absent. A fresh key allocates a record and publishes the
      pair; a tombstoned key resurrects in place (new live version on the
      dead chain); [`Gone] (sealed mid-vacuum) retries until the pair is
      physically out, then takes the fresh path. *)
  let insert t (ctx : ctx) k v : [ `Ok | `Duplicate ] =
    with_stamp t ctx (fun e ->
        let rec fresh () =
          let rptr = R.put t.records ~epoch:e v in
          mark_dirty t rptr;
          match T.insert t.tree ctx k rptr with
          | `Ok -> `Ok
          | `Duplicate ->
              (* lost the publish race; the record was never visible *)
              R.free t.records rptr;
              mark_dirty t rptr;
              existing ()
        and existing () =
          match T.search t.tree ctx k with
          | None -> fresh ()
          | Some rptr -> (
              match R.insert_version t.records rptr ~epoch:e v with
              | `Ok ->
                  mark_dirty t rptr;
                  note_gc t k rptr;
                  `Ok
              | `Live -> `Duplicate
              | `Gone ->
                  Domain.cpu_relax ();
                  existing ())
        in
        existing ())

  (** Bind-or-overwrite (the KV [put]): append a live version to the
      key's chain, allocating the pair on first touch. *)
  let upsert t (ctx : ctx) k v =
    with_stamp t ctx (fun e ->
        let rec fresh () =
          let rptr = R.put t.records ~epoch:e v in
          mark_dirty t rptr;
          match T.insert t.tree ctx k rptr with
          | `Ok -> ()
          | `Duplicate ->
              R.free t.records rptr;
              mark_dirty t rptr;
              existing ()
        and existing () =
          match T.search t.tree ctx k with
          | None -> fresh ()
          | Some rptr -> (
              match R.upsert t.records rptr ~epoch:e v with
              | `Over_live | `Over_dead ->
                  mark_dirty t rptr;
                  note_gc t k rptr
              | `Gone ->
                  Domain.cpu_relax ();
                  existing ())
        in
        existing ())

  (** Logical delete: append a tombstone; the pair stays in the tree for
      pinned readers until vacuum removes it. [true] when the key was
      live. *)
  let delete t (ctx : ctx) k =
    with_stamp t ctx (fun e ->
        let rec go () =
          match T.search t.tree ctx k with
          | None -> false
          | Some rptr -> (
              match R.kill t.records rptr ~epoch:e with
              | `Killed ->
                  mark_dirty t rptr;
                  note_gc t k rptr;
                  true
              | `Dead -> false
              | `Gone ->
                  Domain.cpu_relax ();
                  go ())
        in
        go ())

  (** Current-time fold over live bindings in [lo <= k <= hi] — same
      weak contract as {!Sagiv.Make_on_store.fold_range}: not a
      consistent cut; use a snapshot for that. Tombstoned pairs are
      skipped. *)
  let fold_range t (ctx : ctx) ~lo ~hi ~init f =
    Epoch.with_pin t.epoch ~slot:ctx.Handle.slot (fun () ->
        T.fold_range t.tree ctx ~lo ~hi ~init (fun acc k rptr ->
            match R.get t.records rptr with
            | Some v -> f acc k v
            | None -> acc
            | exception R.Freed_record _ -> acc))

  let range t (ctx : ctx) ~lo ~hi =
    List.rev (fold_range t ctx ~lo ~hi ~init:[] (fun acc k v -> (k, v) :: acc))

  let cardinal t = R.live_values t.records

  (* -- snapshots -- *)

  type snap = {
    snap_epoch : int;
    snap_slot : int;
    snap_owner : Epoch.t;
    released : bool Atomic.t;
  }

  let snap_epoch s = s.snap_epoch

  (** The boundary protocol against [epoch]: pin a snapshot slot,
      tick, wait out the writers already in flight. *)
  let snapshot_on epoch =
    let snap_slot, _pinned = Epoch.pin_snapshot epoch in
    let snap_epoch = Epoch.tick epoch in
    while Epoch.min_worker_pinned epoch <= snap_epoch do
      Domain.cpu_relax ()
    done;
    { snap_epoch; snap_slot; snap_owner = epoch; released = Atomic.make false }

  let snapshot t = snapshot_on t.epoch

  (** One cut across every tree sharing one epoch manager: a single
      pin + tick + wait, so per-shard reads at the returned snapshot
      compose into one point-in-time view. @raise Invalid_argument if
      the trees do not share their epoch. *)
  let snapshot_group (ts : 'v t array) =
    if Array.length ts = 0 then invalid_arg "Mvcc.snapshot_group: no trees";
    let e = ts.(0).epoch in
    Array.iter
      (fun t ->
        if t.epoch != e then
          invalid_arg "Mvcc.snapshot_group: trees do not share an epoch")
      ts;
    snapshot_on e

  let release snap =
    if Atomic.compare_and_set snap.released false true then
      Epoch.release_snapshot snap.snap_owner snap.snap_slot

  let check_snap t snap =
    if Atomic.get snap.released then invalid_arg "Mvcc: snapshot released";
    if snap.snap_owner != t.epoch then
      invalid_arg "Mvcc: snapshot from a different epoch domain"

  (** Point read at the cut. The snap pin keeps every version visible at
      [snap_epoch] alive (prune horizons never pass a pin), and keeps
      the pair in the tree (vacuum's seal requires the horizon to pass
      the tombstone's stamp). *)
  let snap_get t snap (ctx : ctx) k =
    check_snap t snap;
    match T.search t.tree ctx k with
    | None -> None
    | Some rptr -> (
        try R.get_at t.records rptr ~at:snap.snap_epoch
        with R.Freed_record _ -> None)

  (** Consistent fold at the cut: walk the live leaf chain (the tree
      only ever moves pairs rightwards on splits and holds every pair
      visible at a pinned epoch), resolving each record at
      [snap_epoch]. *)
  let snap_fold_range t snap (ctx : ctx) ~lo ~hi ~init f =
    check_snap t snap;
    T.fold_range t.tree ctx ~lo ~hi ~init (fun acc k rptr ->
        match R.get_at t.records rptr ~at:snap.snap_epoch with
        | Some v -> f acc k v
        | None -> acc
        | exception R.Freed_record _ -> acc)

  let snap_range t snap (ctx : ctx) ~lo ~hi =
    List.rev
      (snap_fold_range t snap ctx ~lo ~hi ~init:[] (fun acc k v ->
           (k, v) :: acc))

  (* -- vacuum -- *)

  (** Drain the candidate stack: prune cold tails everywhere; physically
      remove pairs whose chain is a lone tombstone below every pin, via
      seal -> take -> retire. Candidates that stay dead but pinned are
      re-queued for the next pass. Returns the number of pairs removed
      from the tree. *)
  let vacuum t (ctx : ctx) =
    let batch = Atomic.exchange t.gc [] in
    ignore (Atomic.fetch_and_add t.gc_len (-List.length batch));
    let horizon = Epoch.min_pinned t.epoch in
    let removed = ref 0 in
    let collect (k, rptr) =
      (* Bounded re-examination: a concurrent prune rebuilds the spine
         (new version records), so a failed seal means "re-read", not
         "gone". Give up after a few rounds and requeue. *)
      let rec go attempts =
        if attempts = 0 then note_gc t k rptr
        else begin
          (try if R.prune t.records rptr ~horizon > 0 then mark_dirty t rptr
           with R.Freed_record _ -> ());
          match (try R.head t.records rptr with R.Freed_record _ -> None) with
          | None -> () (* sealed by another vacuum, or freed: drop *)
          | Some h -> (
              match (h.R.value, h.R.prev) with
              | Some _, _ -> () (* live again; its next death re-notes it *)
              | None, Some _ ->
                  (* dead but the tail is pinned: a later pass collects *)
                  note_gc t k rptr
              | None, None ->
                  if h.R.epoch >= horizon then note_gc t k rptr
                  else if T.search t.tree ctx k <> Some rptr then
                    () (* stale candidate: [k] re-bound elsewhere *)
                  else if R.seal t.records rptr ~expect:h then begin
                    mark_dirty t rptr;
                    (* Ours: the mapping k -> rptr is frozen (removal
                       requires a seal, and ours won; appenders bounce
                       off [Sealed]), so the take must succeed. The tick
                       starts the slot's grace period: readers pinned
                       below it may still hold [rptr]. *)
                    (match T.take t.tree ctx k with
                    | Some taken -> assert (taken = rptr)
                    | None -> assert false);
                    let e = Epoch.tick t.epoch in
                    let rec push () =
                      let old = Atomic.get t.retired in
                      if not (Atomic.compare_and_set t.retired old ((e, rptr) :: old))
                      then push ()
                    in
                    push ();
                    incr removed
                  end
                  else go (attempts - 1))
        end
      in
      go 4
    in
    List.iter collect batch;
    !removed

  (** Release record slots and tree pages whose grace periods passed.
      Record limbo is this store's own list ([retired]); the horizon is
      the shared clock's [min_pinned], so slots outlive every reader and
      snapshot that could still reach them. *)
  let reclaim t =
    let horizon = Epoch.min_pinned t.epoch in
    let batch = Atomic.exchange t.retired [] in
    let keep, free = List.partition (fun (e, _) -> e >= horizon) batch in
    (if keep <> [] then
       let rec push () =
         let old = Atomic.get t.retired in
         if not (Atomic.compare_and_set t.retired old (keep @ old)) then push ()
       in
       push ());
    List.iter
      (fun (_, rptr) ->
        R.free t.records rptr;
        mark_dirty t rptr)
      free;
    List.length free + T.reclaim t.tree

  (* -- durability -- *)

  let vrec_node ~ptrs ~link ~is_root : K.t Node.t =
    {
      Node.level = Node.vrec_level;
      keys = [||];
      ptrs;
      low = Bound.Neg_inf;
      high = Bound.Pos_inf;
      link;
      is_root;
      state = Node.Live;
    }

  (* Re-serialize group [g] into its vrec pages (caller holds [d_mu]).
     Existing pages are rewritten in place (their ptrs are stable across
     commits, so the WAL logs only genuinely-changed images); growth
     reserves continuations, shrinkage releases them; an all-empty group
     releases everything. *)
  let persist_group t d g =
    let stream, versions, occupied =
      stream_of_group ~group:g ~group_bits:d.d_group_bits ~enc:d.d_enc
        (R.export t.records)
    in
    let existing =
      Option.value ~default:[] (Hashtbl.find_opt d.d_pages g)
    in
    let old_versions =
      Option.value ~default:0 (Hashtbl.find_opt d.d_group_versions g)
    in
    if not occupied then begin
      List.iter (S.release d.d_store) existing;
      d.d_npages <- d.d_npages - List.length existing;
      d.d_versions <- d.d_versions - old_versions;
      Hashtbl.remove d.d_pages g;
      Hashtbl.remove d.d_group_versions g
    end
    else begin
      let len = Array.length stream in
      let nchunks = (len + d.d_page_ints - 1) / d.d_page_ints in
      let rec fit have n =
        if n = 0 then begin
          List.iter (S.release d.d_store) have;
          []
        end
        else
          match have with
          | [] -> S.reserve d.d_store :: fit [] (n - 1)
          | p :: rest -> p :: fit rest (n - 1)
      in
      let ptrs_list = fit existing nchunks in
      let parr = Array.of_list ptrs_list in
      for i = 0 to nchunks - 1 do
        let off = i * d.d_page_ints in
        let chunk = Array.sub stream off (min d.d_page_ints (len - off)) in
        let link = if i + 1 < nchunks then Some parr.(i + 1) else None in
        let p = parr.(i) in
        S.lock d.d_store p;
        S.put d.d_store p (vrec_node ~ptrs:chunk ~link ~is_root:(i = 0));
        S.unlock d.d_store p
      done;
      d.d_npages <- d.d_npages + nchunks - List.length existing;
      d.d_versions <- d.d_versions + versions - old_versions;
      Hashtbl.replace d.d_pages g ptrs_list;
      Hashtbl.replace d.d_group_versions g versions
    end

  (* Serialize every dirty group and refresh the metadata blob (tree
     geometry + MVCC extension). The clock is read {e after} the chains:
     every epoch in a serialized chain came from a pin at [<= global], so
     the persisted clock bounds every persisted stamp and recovery's
     [advance_to] can never let a fresh write stamp below durable state.
     Likewise [horizon]: recovery re-prunes at the persisted [min_pinned],
     which is exactly the most conservative prune any pre-crash vacuum
     could have applied — a WAL replay of a pre-prune image past a
     checkpoint is undone deterministically, never resurrected. *)
  let persist t d =
    Mutex.lock d.d_mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock d.d_mu)
      (fun () ->
        let dirty = Atomic.exchange d.d_dirty ISet.empty in
        ISet.iter (persist_group t d) dirty;
        let clock = Epoch.current t.epoch in
        let horizon =
          let m = Epoch.min_pinned t.epoch in
          if m = max_int then clock else m
        in
        let frontier = R.frontier t.records in
        let ext =
          encode_meta_ext
            { group_bits = d.d_group_bits; clock; horizon; frontier }
        in
        S.set_meta d.d_store (Bytes.cat (T.encode_meta t.tree) ext))

  (** Durably commit completed operations: on a durable tree this also
      serializes dirty version-chain groups into the same commit batch
      (one WAL group commit covers tree pages, vrec pages and metadata).
      Plain (memory) trees defer to {!T.commit}. *)
  let commit t =
    match t.durable with
    | None -> T.commit t.tree
    | Some d ->
        persist t d;
        S.commit d.d_store

  (** Quiescent full sync (checkpoint path); see {!T.flush}. *)
  let flush t =
    match t.durable with
    | None -> T.flush t.tree
    | Some d ->
        persist t d;
        S.sync d.d_store

  let mk_durable ?(group_bits = 6) ?(page_ints = 480) ~enc ~dec store =
    {
      d_store = store;
      d_enc = enc;
      d_dec = dec;
      d_group_bits = group_bits;
      d_page_ints = max 16 page_ints;
      d_mu = Mutex.create ();
      d_pages = Hashtbl.create 64;
      d_group_versions = Hashtbl.create 64;
      d_versions = 0;
      d_npages = 0;
      d_dirty = Atomic.make ISet.empty;
    }

  (** A fresh durable MVCC store over an empty page store: the tree and
      the version heap share [store], one commit makes both durable.
      [enc]/[dec] map payloads to the int stream (identity for int
      payloads); [page_ints] bounds a vrec page's int count — compute it
      from the backend's page size so the encoded node always fits. *)
  let create_durable ?order ?enqueue_on_delete ?epoch ?size ?group_bits
      ?page_ints ~enc ~dec store =
    {
      tree = T.create ?order ?enqueue_on_delete ~store ();
      records = R.create ?size ();
      epoch = (match epoch with Some e -> e | None -> Epoch.create ());
      gc = Atomic.make [];
      gc_len = Atomic.make 0;
      retired = Atomic.make [];
      durable = Some (mk_durable ?group_bits ?page_ints ~enc ~dec store);
    }

  (** Reopen a durable MVCC store: rebuild the tree from its metadata,
      rediscover the vrec pages (quiescent [iter] for heads, links for
      continuations), restore every chain exactly as persisted, restart
      the clock above every persisted stamp, re-prune at the persisted
      horizon, then heal the bounded crash windows the commit protocol
      leaves open:
      - a pair whose slot is empty (tree insert captured, record not):
        the op was never acked — remove the pair;
      - a pair whose slot is sealed (vacuum's seal captured, take not):
        finish the removal;
      - an occupied slot no pair reaches (record captured, tree insert
        not; or take captured, seal not): free it;
      - a reachable chain headed by a tombstone: re-note it for vacuum.
      A store with no MVCC extension (a plain unversioned tree) is
      migrated in place: each payload becomes a one-version chain. *)
  let open_durable ?enqueue_on_delete ?epoch ?size ?group_bits ?page_ints
      ~enc ~dec store =
    let tree = T.open_existing ?enqueue_on_delete store in
    let meta =
      match S.get_meta store with Some b -> b | None -> assert false
    in
    let ext = decode_meta_ext meta in
    let d =
      mk_durable
        ?group_bits:
          (match ext with
          | Some e -> Some e.group_bits
          | None -> group_bits)
        ?page_ints ~enc ~dec store
    in
    let t =
      {
        tree;
        records = R.create ?size ();
        epoch = (match epoch with Some e -> e | None -> Epoch.create ());
        gc = Atomic.make [];
        gc_len = Atomic.make 0;
        retired = Atomic.make [];
        durable = Some d;
      }
    in
    let c = ctx ~slot:0 in
    (match ext with
    | None ->
        (* plain tree: migrate payloads into one-version chains *)
        let e = Epoch.current t.epoch in
        List.iter
          (fun (k, payload) ->
            let rptr = R.put t.records ~epoch:e (dec payload) in
            mark_dirty t rptr;
            (match T.update tree c k rptr with
            | Some _ -> ()
            | None -> assert false))
          (T.to_list tree)
    | Some ext ->
        (* rediscover groups: scan for vrec heads, follow links *)
        let heads = ref [] in
        let nodes = Hashtbl.create 64 in
        S.iter store (fun p n ->
            if n.Node.level = Node.vrec_level then begin
              Hashtbl.replace nodes p n;
              if n.Node.is_root then heads := p :: !heads
            end);
        let max_slot = ref (-1) in
        List.iter
          (fun hp ->
            let rec pages p =
              let n =
                match Hashtbl.find_opt nodes p with
                | Some n -> n
                | None -> S.get store p
              in
              match n.Node.link with
              | Some nxt -> (p, n.Node.ptrs) :: pages nxt
              | None -> [ (p, n.Node.ptrs) ]
            in
            let chunks = pages hp in
            let stream = Array.concat (List.map snd chunks) in
            let group, base, states = group_of_stream ~dec:d.d_dec stream in
            let versions = ref 0 in
            Array.iteri
              (fun i st ->
                match st with
                | R.Slot_empty -> ()
                | st ->
                    R.restore t.records (base + i) st;
                    if base + i > !max_slot then max_slot := base + i;
                    (match st with
                    | R.Slot_chain v -> versions := !versions + chain_len v
                    | _ -> ()))
              states;
            Hashtbl.replace d.d_pages group (List.map fst chunks);
            Hashtbl.replace d.d_group_versions group !versions;
            d.d_versions <- d.d_versions + !versions;
            d.d_npages <- d.d_npages + List.length chunks)
          !heads;
        R.finish_restore t.records ~next:(max ext.frontier (!max_slot + 1));
        Epoch.advance_to t.epoch ext.clock;
        (* re-prune at the persisted horizon: deterministic, idempotent —
           any version a pre-crash prune dropped is below [ext.horizon]
           and is dropped again here even if WAL replay resurrected a
           pre-prune page image *)
        Hashtbl.iter
          (fun group _ ->
            let base = group lsl d.d_group_bits in
            for i = 0 to (1 lsl d.d_group_bits) - 1 do
              match R.export t.records (base + i) with
              | R.Slot_chain _ ->
                  if R.prune t.records (base + i) ~horizon:ext.horizon > 0
                  then mark_dirty t (base + i)
              | _ -> ()
            done)
          d.d_pages;
        (* heal the crash windows *)
        let reachable = Hashtbl.create 256 in
        List.iter
          (fun (k, rptr) ->
            Hashtbl.replace reachable rptr ();
            match R.export t.records rptr with
            | R.Slot_empty -> ignore (T.take tree c k)
            | R.Slot_sealed ->
                ignore (T.take tree c k);
                R.free t.records rptr;
                mark_dirty t rptr
            | R.Slot_chain h ->
                if h.R.value = None then note_gc t k rptr)
          (T.to_list tree);
        for p = 0 to R.frontier t.records - 1 do
          if not (Hashtbl.mem reachable p) then
            match R.export t.records p with
            | R.Slot_empty -> ()
            | R.Slot_sealed | R.Slot_chain _ ->
                R.free t.records p;
                mark_dirty t p
        done);
    (* make the healed/migrated state durable before serving *)
    persist t d;
    S.commit store;
    t

  (** Bulk preload (quiescent, empty tree): allocate one-version chains
      for the payloads and pack the (key, slot) pairs through the tree's
      bulk builder. Returns [false] (and allocates nothing durable) when
      the tree is not empty. *)
  let bulk_add ?fill t pairs =
    let e = Epoch.current t.epoch in
    let prs =
      List.map
        (fun (k, v) ->
          let rptr = R.put t.records ~epoch:e v in
          mark_dirty t rptr;
          (k, rptr))
        pairs
    in
    if T.bulk_add ?fill t.tree prs then true
    else begin
      List.iter
        (fun (_, rptr) ->
          R.free t.records rptr;
          mark_dirty t rptr)
        prs;
      false
    end

  let persisted_versions t =
    match t.durable with None -> 0 | Some d -> d.d_versions

  let persisted_pages t =
    match t.durable with None -> 0 | Some d -> d.d_npages

  let gc_pending t = Atomic.get t.gc_len
  let live_versions t = R.live_versions t.records
  let pruned_versions t = R.pruned_total t.records
  let bytes_stored t = R.bytes_stored t.records
  let min_pinned t = Epoch.min_pinned t.epoch

  (** Snapshot the MVCC gauges into a {!Stats.io} record (the non-MVCC
      fields stay zero) so callers can [Stats.io_merge] it with the
      backing store's line and print one combined io report. *)
  let io_stats t =
    let io = Stats.io_create () in
    io.Stats.epoch_min_pinned <- Epoch.min_pinned t.epoch;
    io.Stats.snap_pins <- Epoch.pinned_snapshots t.epoch;
    io.Stats.mvcc_versions <- R.live_versions t.records;
    io.Stats.mvcc_pruned <- R.pruned_total t.records;
    (match t.durable with
    | Some d ->
        io.Stats.mvcc_disk_versions <- d.d_versions;
        io.Stats.mvcc_disk_pages <- d.d_npages
    | None -> ());
    io
end

module Make (K : Key.S) = Make_on_store (K) (Store.For_key (K))
