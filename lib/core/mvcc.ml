(** Multi-version store: the Sagiv tree as a dense index over a
    {!Repro_storage.Record_store} of version chains, giving lock-free
    point-in-time snapshot reads with zero writer stalls.

    {2 Design}

    Tree nodes are rewritten in place (immutable values behind atomic
    slots), so the {e structure} cannot be versioned — the {e records}
    are. A pair (k, p) binds [k] to record slot [p] for the pair's whole
    lifetime; writers never repoint it. Logical state lives in the
    chain at [p]: an upsert appends a live version stamped with the
    writer's pinned epoch, a delete appends a tombstone, and the pair
    {e stays in the tree} so snapshots pinned before the delete still
    find it. Readers at epoch [E] resolve [p] to the newest version
    with [epoch <= E].

    {2 The snapshot cut}

    [snapshot] pins a dedicated epoch slot (publish-then-validate, so
    reclamation can never overtake it), then {e ticks} the clock to
    obtain the cut epoch [e], then waits until every worker pin exceeds
    [e]. Writers pinned at [<= e] started before the tick and their
    stamps are [<= e]; pins published after the tick validate against
    the advanced clock and stamp [> e]. Once the wait drains, reading
    at [e] is a consistent cut at the tick's instant: every operation
    whose effects are included began before the tick, every excluded
    one began after. Writers never wait — only the snapshot taker
    spins, and only for the ops already in flight at its tick.

    {2 Vacuum}

    Dead pairs (head tombstone below every pin) are physically removed
    by [vacuum], resolving the resurrection race with a [Sealed]
    barrier: re-check the pair still maps to the candidate slot, CAS
    the proven-dead chain to [Sealed] (late appenders get [`Gone] and
    retry from a fresh tree search), take the pair out of the tree,
    then retire the slot through the epoch manager so stale readers
    finish before the slot recycles. Chains that stay live just get
    their cold tails pruned.

    Several [t]s may share one {!Repro_storage.Epoch} ([?epoch] at
    create): a group snapshot then performs one pin + one tick + one
    wait and reads every sharing tree at the same cut — the cross-shard
    consistency {!Repro_baseline.Tree_intf} composes on. *)

open Repro_storage

module Make_on_store (K : Key.S) (S : Page_store.S with type key = K.t) =
struct
  module T = Sagiv.Make_on_store (K) (S)
  module R = Record_store

  type 'v t = {
    tree : T.t;
    records : 'v R.t;
    epoch : Epoch.t;
        (** the record/MVCC clock — distinct from the tree's own page
            epoch, and shareable across shards for group snapshots *)
    gc : (K.t * int) list Atomic.t;  (** vacuum candidates (Treiber stack) *)
    gc_len : int Atomic.t;
    retired : (int * int) list Atomic.t;
        (** sealed record slots in limbo as [(retire epoch, rptr)]. Kept
            here, not in the epoch manager's limbo: the {e clock} may be
            shared across shards but the {e slots} belong to this store,
            and a shared limbo would free one shard's slots into
            another's heap. *)
  }

  type ctx = Handle.ctx

  let ctx = Handle.ctx

  let create ?order ?enqueue_on_delete ?epoch ?size () =
    {
      tree = T.create ?order ?enqueue_on_delete ();
      records = R.create ?size ();
      epoch = (match epoch with Some e -> e | None -> Epoch.create ());
      gc = Atomic.make [];
      gc_len = Atomic.make 0;
      retired = Atomic.make [];
    }

  let tree t = t.tree
  let records t = t.records
  let epoch t = t.epoch

  let note_gc t k ptr =
    let rec go () =
      let old = Atomic.get t.gc in
      if Atomic.compare_and_set t.gc old ((k, ptr) :: old) then
        Atomic.incr t.gc_len
      else go ()
    in
    go ()

  let with_stamp t (ctx : ctx) f =
    let e = Epoch.pin t.epoch ~slot:ctx.Handle.slot in
    Fun.protect
      ~finally:(fun () -> Epoch.unpin t.epoch ~slot:ctx.Handle.slot)
      (fun () -> f e)

  (** [get t ctx k] is the current value bound to [k], lock-free. The
      pin defers slot recycling, never blocks writers. *)
  let get t (ctx : ctx) k =
    with_stamp t ctx (fun _e ->
        match T.search t.tree ctx k with
        | None -> None
        | Some rptr -> R.get t.records rptr)

  (** Insert-if-absent. A fresh key allocates a record and publishes the
      pair; a tombstoned key resurrects in place (new live version on the
      dead chain); [`Gone] (sealed mid-vacuum) retries until the pair is
      physically out, then takes the fresh path. *)
  let insert t (ctx : ctx) k v : [ `Ok | `Duplicate ] =
    with_stamp t ctx (fun e ->
        let rec fresh () =
          let rptr = R.put t.records ~epoch:e v in
          match T.insert t.tree ctx k rptr with
          | `Ok -> `Ok
          | `Duplicate ->
              (* lost the publish race; the record was never visible *)
              R.free t.records rptr;
              existing ()
        and existing () =
          match T.search t.tree ctx k with
          | None -> fresh ()
          | Some rptr -> (
              match R.insert_version t.records rptr ~epoch:e v with
              | `Ok ->
                  note_gc t k rptr;
                  `Ok
              | `Live -> `Duplicate
              | `Gone ->
                  Domain.cpu_relax ();
                  existing ())
        in
        existing ())

  (** Bind-or-overwrite (the KV [put]): append a live version to the
      key's chain, allocating the pair on first touch. *)
  let upsert t (ctx : ctx) k v =
    with_stamp t ctx (fun e ->
        let rec fresh () =
          let rptr = R.put t.records ~epoch:e v in
          match T.insert t.tree ctx k rptr with
          | `Ok -> ()
          | `Duplicate ->
              R.free t.records rptr;
              existing ()
        and existing () =
          match T.search t.tree ctx k with
          | None -> fresh ()
          | Some rptr -> (
              match R.upsert t.records rptr ~epoch:e v with
              | `Over_live | `Over_dead -> note_gc t k rptr
              | `Gone ->
                  Domain.cpu_relax ();
                  existing ())
        in
        existing ())

  (** Logical delete: append a tombstone; the pair stays in the tree for
      pinned readers until vacuum removes it. [true] when the key was
      live. *)
  let delete t (ctx : ctx) k =
    with_stamp t ctx (fun e ->
        let rec go () =
          match T.search t.tree ctx k with
          | None -> false
          | Some rptr -> (
              match R.kill t.records rptr ~epoch:e with
              | `Killed ->
                  note_gc t k rptr;
                  true
              | `Dead -> false
              | `Gone ->
                  Domain.cpu_relax ();
                  go ())
        in
        go ())

  (** Current-time fold over live bindings in [lo <= k <= hi] — same
      weak contract as {!Sagiv.Make_on_store.fold_range}: not a
      consistent cut; use a snapshot for that. Tombstoned pairs are
      skipped. *)
  let fold_range t (ctx : ctx) ~lo ~hi ~init f =
    Epoch.with_pin t.epoch ~slot:ctx.Handle.slot (fun () ->
        T.fold_range t.tree ctx ~lo ~hi ~init (fun acc k rptr ->
            match R.get t.records rptr with
            | Some v -> f acc k v
            | None -> acc
            | exception R.Freed_record _ -> acc))

  let range t (ctx : ctx) ~lo ~hi =
    List.rev (fold_range t ctx ~lo ~hi ~init:[] (fun acc k v -> (k, v) :: acc))

  let cardinal t = R.live_values t.records

  (* -- snapshots -- *)

  type snap = {
    snap_epoch : int;
    snap_slot : int;
    snap_owner : Epoch.t;
    released : bool Atomic.t;
  }

  let snap_epoch s = s.snap_epoch

  (** The boundary protocol against [epoch]: pin a snapshot slot,
      tick, wait out the writers already in flight. *)
  let snapshot_on epoch =
    let snap_slot, _pinned = Epoch.pin_snapshot epoch in
    let snap_epoch = Epoch.tick epoch in
    while Epoch.min_worker_pinned epoch <= snap_epoch do
      Domain.cpu_relax ()
    done;
    { snap_epoch; snap_slot; snap_owner = epoch; released = Atomic.make false }

  let snapshot t = snapshot_on t.epoch

  (** One cut across every tree sharing one epoch manager: a single
      pin + tick + wait, so per-shard reads at the returned snapshot
      compose into one point-in-time view. @raise Invalid_argument if
      the trees do not share their epoch. *)
  let snapshot_group (ts : 'v t array) =
    if Array.length ts = 0 then invalid_arg "Mvcc.snapshot_group: no trees";
    let e = ts.(0).epoch in
    Array.iter
      (fun t ->
        if t.epoch != e then
          invalid_arg "Mvcc.snapshot_group: trees do not share an epoch")
      ts;
    snapshot_on e

  let release snap =
    if Atomic.compare_and_set snap.released false true then
      Epoch.release_snapshot snap.snap_owner snap.snap_slot

  let check_snap t snap =
    if Atomic.get snap.released then invalid_arg "Mvcc: snapshot released";
    if snap.snap_owner != t.epoch then
      invalid_arg "Mvcc: snapshot from a different epoch domain"

  (** Point read at the cut. The snap pin keeps every version visible at
      [snap_epoch] alive (prune horizons never pass a pin), and keeps
      the pair in the tree (vacuum's seal requires the horizon to pass
      the tombstone's stamp). *)
  let snap_get t snap (ctx : ctx) k =
    check_snap t snap;
    match T.search t.tree ctx k with
    | None -> None
    | Some rptr -> (
        try R.get_at t.records rptr ~at:snap.snap_epoch
        with R.Freed_record _ -> None)

  (** Consistent fold at the cut: walk the live leaf chain (the tree
      only ever moves pairs rightwards on splits and holds every pair
      visible at a pinned epoch), resolving each record at
      [snap_epoch]. *)
  let snap_fold_range t snap (ctx : ctx) ~lo ~hi ~init f =
    check_snap t snap;
    T.fold_range t.tree ctx ~lo ~hi ~init (fun acc k rptr ->
        match R.get_at t.records rptr ~at:snap.snap_epoch with
        | Some v -> f acc k v
        | None -> acc
        | exception R.Freed_record _ -> acc)

  let snap_range t snap (ctx : ctx) ~lo ~hi =
    List.rev
      (snap_fold_range t snap ctx ~lo ~hi ~init:[] (fun acc k v ->
           (k, v) :: acc))

  (* -- vacuum -- *)

  (** Drain the candidate stack: prune cold tails everywhere; physically
      remove pairs whose chain is a lone tombstone below every pin, via
      seal -> take -> retire. Candidates that stay dead but pinned are
      re-queued for the next pass. Returns the number of pairs removed
      from the tree. *)
  let vacuum t (ctx : ctx) =
    let batch = Atomic.exchange t.gc [] in
    ignore (Atomic.fetch_and_add t.gc_len (-List.length batch));
    let horizon = Epoch.min_pinned t.epoch in
    let removed = ref 0 in
    let collect (k, rptr) =
      (* Bounded re-examination: a concurrent prune rebuilds the spine
         (new version records), so a failed seal means "re-read", not
         "gone". Give up after a few rounds and requeue. *)
      let rec go attempts =
        if attempts = 0 then note_gc t k rptr
        else begin
          (try ignore (R.prune t.records rptr ~horizon)
           with R.Freed_record _ -> ());
          match (try R.head t.records rptr with R.Freed_record _ -> None) with
          | None -> () (* sealed by another vacuum, or freed: drop *)
          | Some h -> (
              match (h.R.value, h.R.prev) with
              | Some _, _ -> () (* live again; its next death re-notes it *)
              | None, Some _ ->
                  (* dead but the tail is pinned: a later pass collects *)
                  note_gc t k rptr
              | None, None ->
                  if h.R.epoch >= horizon then note_gc t k rptr
                  else if T.search t.tree ctx k <> Some rptr then
                    () (* stale candidate: [k] re-bound elsewhere *)
                  else if R.seal t.records rptr ~expect:h then begin
                    (* Ours: the mapping k -> rptr is frozen (removal
                       requires a seal, and ours won; appenders bounce
                       off [Sealed]), so the take must succeed. The tick
                       starts the slot's grace period: readers pinned
                       below it may still hold [rptr]. *)
                    (match T.take t.tree ctx k with
                    | Some taken -> assert (taken = rptr)
                    | None -> assert false);
                    let e = Epoch.tick t.epoch in
                    let rec push () =
                      let old = Atomic.get t.retired in
                      if not (Atomic.compare_and_set t.retired old ((e, rptr) :: old))
                      then push ()
                    in
                    push ();
                    incr removed
                  end
                  else go (attempts - 1))
        end
      in
      go 4
    in
    List.iter collect batch;
    !removed

  (** Release record slots and tree pages whose grace periods passed.
      Record limbo is this store's own list ([retired]); the horizon is
      the shared clock's [min_pinned], so slots outlive every reader and
      snapshot that could still reach them. *)
  let reclaim t =
    let horizon = Epoch.min_pinned t.epoch in
    let batch = Atomic.exchange t.retired [] in
    let keep, free = List.partition (fun (e, _) -> e >= horizon) batch in
    (if keep <> [] then
       let rec push () =
         let old = Atomic.get t.retired in
         if not (Atomic.compare_and_set t.retired old (keep @ old)) then push ()
       in
       push ());
    List.iter (fun (_, rptr) -> R.free t.records rptr) free;
    List.length free + T.reclaim t.tree

  let gc_pending t = Atomic.get t.gc_len
  let live_versions t = R.live_versions t.records
  let pruned_versions t = R.pruned_total t.records
  let bytes_stored t = R.bytes_stored t.records
  let min_pinned t = Epoch.min_pinned t.epoch

  (** Snapshot the MVCC gauges into a {!Stats.io} record (the non-MVCC
      fields stay zero) so callers can [Stats.io_merge] it with the
      backing store's line and print one combined io report. *)
  let io_stats t =
    let io = Stats.io_create () in
    io.Stats.epoch_min_pinned <- Epoch.min_pinned t.epoch;
    io.Stats.snap_pins <- Epoch.pinned_snapshots t.epoch;
    io.Stats.mvcc_versions <- R.live_versions t.records;
    io.Stats.mvcc_pruned <- R.pruned_total t.records;
    io
end

module Make (K : Key.S) = Make_on_store (K) (Store.For_key (K))
