(** Shared tree navigation: descent, right-moves, restart and
    lock-validate, implementing the paper's traversal discipline once for
    searches, insertions, deletions (Figs 4–5) and the compactor's parent
    search (§5.4). Readers take no locks.

    This module is the library's internal spine; most applications want
    {!Sagiv} instead. *)

open Repro_storage

(** Ablation toggle (benchmarks only): disable the §5.2 stack-backtracking
    refinement so restarts always return to the root. Set before a run. *)
val backtrack_on_restart : bool ref

module Make_on_store (K : Key.S) (S : Page_store.S with type key = K.t) : sig
  module N : module type of Node.Make (K)

  type tree = (K.t, S.t) Handle.t

  val bcompare : K.t Bound.t -> K.t Bound.t -> int

  exception Restart
  (** The current traversal is stale (data moved left past us, §5.2
      case 2, or a forwarding chain left the level). *)

  val get : tree -> Handle.ctx -> Node.ptr -> K.t Node.t
  val put : tree -> Handle.ctx -> Node.ptr -> K.t Node.t -> unit
  val lock : tree -> Handle.ctx -> Node.ptr -> unit
  val unlock : tree -> Handle.ctx -> Node.ptr -> unit

  (** What to do when the target level does not exist (yet): wait for the
      concurrent root creation to land (§3.3, insertions) or give up
      (§5.4 "the level became the root", compactors). *)
  type on_missing_level = Wait | Give_up

  exception Level_missing
  (** Raised under {!Give_up}. *)

  val locate :
    tree ->
    Handle.ctx ->
    K.t Bound.t ->
    to_level:int ->
    on_missing:on_missing_level ->
    Node.ptr * K.t Node.t * Node.ptr list
  (** Find (without locking) the node at [to_level] whose range contains
      the target; returns the node and the descent stack (top = one level
      above). Restarts internally — backtracking through the stack first,
      then from the root (§5.2). *)

  val acquire :
    tree ->
    Handle.ctx ->
    K.t Bound.t ->
    level:int ->
    on_missing:on_missing_level ->
    ?start:Node.ptr ->
    stack:Node.ptr list ->
    unit ->
    Node.ptr * K.t Node.t * Node.ptr list
  (** Locate and {e lock} the node for the target, revalidating under the
      lock as in Fig 5 ([v > high] ⇒ unlock and chase the link; deleted or
      [v <= low] ⇒ unlock and restart). [start] is a hint pointer believed
      to be at [level], at or left of the target. *)
end

module Make (K : Key.S) : module type of Make_on_store (K) (Store.For_key (K))
(** The navigation module over the in-memory {!Store}. *)
