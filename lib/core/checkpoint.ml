(** Checkpointing a quiescent tree to a {!Repro_storage.Paged_file}.

    Unlike {!Snapshot} (one opaque byte blob), a checkpoint lives in
    fixed-size pages like the paper's trees do on disk: page 0 is a header
    (magic, geometry, prime-block state), and the node stream is laid out
    in a {e page chain} — each page carries a next-page pointer, so
    objects larger than a page (big nodes, the whole stream) span pages
    exactly the way overflow chains do in a real pager. Works over the
    in-memory backend (tests) and real files (durability). *)

open Repro_storage

let magic = 0x43_4B_50_31 (* "CKP1" *)
let version = 1

exception Corrupt of string

(* -- page chains: a byte stream over pages of the form
      [next : i64][data : page_size - 8]                                -- *)

let chain_write (pf : Paged_file.t) (payload : Bytes.t) : int =
  let psz = Paged_file.page_size pf in
  let data_per_page = psz - 8 in
  let total = Bytes.length payload in
  let npages = max 1 ((total + data_per_page - 1) / data_per_page) in
  let first = Paged_file.pages pf in
  for i = 0 to npages - 1 do
    let page = Bytes.make psz '\000' in
    let next = if i = npages - 1 then -1 else first + i + 1 in
    Bytes.set_int64_le page 0 (Int64.of_int next);
    let off = i * data_per_page in
    let len = min data_per_page (total - off) in
    if len > 0 then Bytes.blit payload off page 8 len;
    ignore (Paged_file.append pf page)
  done;
  first

let chain_read (pf : Paged_file.t) ~first ~total : Bytes.t =
  let psz = Paged_file.page_size pf in
  let data_per_page = psz - 8 in
  let out = Bytes.create total in
  let rec go page_idx off =
    if off < total then begin
      if page_idx < 0 then raise (Corrupt "chain truncated");
      let page = Paged_file.read pf page_idx in
      let next = Int64.to_int (Bytes.get_int64_le page 0) in
      let len = min data_per_page (total - off) in
      Bytes.blit page 8 out off len;
      go next (off + len)
    end
  in
  go first 0;
  out

module Make_on_store (K : Key.S) (S : Page_store.S with type key = K.t) = struct
  module C = Page_codec.Make (K)
  module T = Sagiv.Make_on_store (K) (S)

  (* Header layout (page 0):
     magic i32 | version u8 | order i32 | levels i32 |
     node_count i64 | stream_first i64 | stream_len i64 |
     leftmost: levels * i64 (old pointers, remapped at load) *)

  let write_header pf ~order ~levels ~node_count ~stream_first ~stream_len ~leftmost =
    let psz = Paged_file.page_size pf in
    if 37 + (8 * levels) > psz then raise (Corrupt "tree too tall for header page");
    let page = Bytes.make psz '\000' in
    Bytes.set_int32_le page 0 (Int32.of_int magic);
    Bytes.set_uint8 page 4 version;
    Bytes.set_int32_le page 5 (Int32.of_int order);
    Bytes.set_int32_le page 9 (Int32.of_int levels);
    Bytes.set_int64_le page 13 (Int64.of_int node_count);
    Bytes.set_int64_le page 21 (Int64.of_int stream_first);
    Bytes.set_int64_le page 29 (Int64.of_int stream_len);
    Array.iteri
      (fun i p -> Bytes.set_int64_le page (37 + (8 * i)) (Int64.of_int p))
      leftmost;
    Paged_file.write pf 0 page

  let read_header pf =
    let page = Paged_file.read pf 0 in
    if Int32.to_int (Bytes.get_int32_le page 0) <> magic then raise (Corrupt "bad magic");
    if Bytes.get_uint8 page 4 <> version then raise (Corrupt "bad version");
    let order = Int32.to_int (Bytes.get_int32_le page 5) in
    let levels = Int32.to_int (Bytes.get_int32_le page 9) in
    let node_count = Int64.to_int (Bytes.get_int64_le page 13) in
    let stream_first = Int64.to_int (Bytes.get_int64_le page 21) in
    let stream_len = Int64.to_int (Bytes.get_int64_le page 29) in
    if order < 1 || levels < 1 || node_count < 0 || stream_len < 0 then
      raise (Corrupt "implausible header");
    let leftmost =
      Array.init levels (fun i -> Int64.to_int (Bytes.get_int64_le page (37 + (8 * i))))
    in
    (order, levels, node_count, stream_first, stream_len, leftmost)

  (** Write a quiescent tree into [pf] (page 0 becomes the header). *)
  let save (t : (K.t, S.t) Handle.t) (pf : Paged_file.t) =
    (* The chain walk below assumes no concurrent restructuring; an epoch
       pin is cheap, definite evidence an operation is in flight. *)
    if Epoch.min_pinned t.Handle.epoch <> max_int then
      invalid_arg "Checkpoint.save: tree not quiescent (operation in flight)";
    let prime = Prime_block.read t.Handle.prime in
    let levels = prime.Prime_block.levels in
    (* reserve the header page *)
    Paged_file.write pf 0 (Bytes.make (Paged_file.page_size pf) '\000');
    (* stream: for each level top-down, chain-ordered nodes as
       (old_ptr i64, codec bytes) *)
    let buf = Buffer.create 65536 in
    let count = ref 0 in
    for i = 0 to levels - 1 do
      let level = levels - 1 - i in
      match Prime_block.leftmost_at prime ~level with
      | None -> raise (Corrupt "missing level during save")
      | Some p ->
          let rec go ptr =
            let n = S.get t.Handle.store ptr in
            Buffer.add_int64_le buf (Int64.of_int ptr);
            C.encode buf n;
            incr count;
            match n.Node.link with Some q -> go q | None -> ()
          in
          go p
    done;
    let payload = Buffer.to_bytes buf in
    let stream_first = chain_write pf payload in
    write_header pf ~order:t.Handle.order ~levels ~node_count:!count ~stream_first
      ~stream_len:(Bytes.length payload)
      ~leftmost:prime.Prime_block.leftmost;
    Paged_file.sync pf

  (** Online checkpoint: scan the live tree lock-free
      ({!Sagiv.Make_on_store.fold_all}), bulk-load the pairs into a
      {e private} packed tree, and checkpoint that one quiescently —
      its quiescence holds by construction, and the live tree's writers
      never stall. The image holds every pair stable across the scan;
      run under an MVCC snapshot pin for a point-in-time cut. *)
  let save_online (t : (K.t, S.t) Handle.t) (ctx : Handle.ctx) (pf : Paged_file.t) =
    let pairs =
      List.rev (T.fold_all t ctx ~init:[] (fun acc k p -> (k, p) :: acc))
    in
    save (T.of_sorted ~order:t.Handle.order pairs) pf

  (** Rebuild a tree from a checkpoint, remapping page ids. *)
  let load (pf : Paged_file.t) : (K.t, S.t) Handle.t =
    let order, levels, node_count, stream_first, stream_len, old_leftmost =
      read_header pf
    in
    let payload = chain_read pf ~first:stream_first ~total:stream_len in
    let store = S.create () in
    let remap = Hashtbl.create (2 * node_count) in
    let all = ref [] in
    let pos = ref 0 in
    for _ = 1 to node_count do
      let old_ptr = Int64.to_int (Bytes.get_int64_le payload !pos) in
      pos := !pos + 8;
      let n, pos' = C.decode payload ~pos:!pos in
      pos := pos';
      let fresh = S.alloc store n in
      Hashtbl.replace remap old_ptr fresh;
      all := (fresh, n) :: !all
    done;
    if !pos <> stream_len then raise (Corrupt "trailing bytes in node stream");
    let map_ptr p =
      match Hashtbl.find_opt remap p with
      | Some q -> q
      | None -> raise (Corrupt (Printf.sprintf "dangling pointer %d" p))
    in
    List.iter
      (fun (fresh, n) ->
        let ptrs = if Node.is_leaf n then n.Node.ptrs else Array.map map_ptr n.Node.ptrs in
        let link = Option.map map_ptr n.Node.link in
        S.put store fresh { n with Node.ptrs; link })
      !all;
    let leftmost = Array.map map_ptr old_leftmost in
    {
      Handle.store;
      prime = Prime_block.restore ~levels ~leftmost;
      epoch = Epoch.create ();
      order;
      queue = Cqueue.create ();
      enqueue_on_delete = false;
    }
end

module Make (K : Key.S) = Make_on_store (K) (Store.For_key (K))
