(** Compression work queue (paper §5.4).

    A deletion that leaves a node less than half full puts the node on a
    queue; compression processes pop nodes and compress them. The queue is
    "locked with an exclusive lock" when shared — a mutex here. Entries are
    identified by the node pointer; pushing an already-queued node updates
    its information (the high value known to the pusher is at least as
    recent when the pusher holds the node's lock, which is why {!push}
    takes [~update]). Pops prefer higher levels, per the paper's footnote:
    "it is a good idea to give priority to nodes having a higher level and
    remove them first from the queue." *)

open Repro_storage

type 'k entry = {
  ptr : Node.ptr;
  level : int;
  mutable high : 'k Bound.t;
  mutable stack : Node.ptr list;  (** path from root, top = parent-level node *)
  mutable stamp : int;  (** enqueue epoch, for diagnostics *)
  mutable live : bool;
}

let max_levels = 64

type 'k t = {
  mutex : Mutex.t;
  by_ptr : (Node.ptr, 'k entry) Hashtbl.t;
  buckets : 'k entry Queue.t array;  (** index = tree level *)
  mutable count : int;
  mutable total_pushed : int;
}

let create () =
  {
    mutex = Mutex.create ();
    by_ptr = Hashtbl.create 64;
    buckets = Array.init max_levels (fun _ -> Queue.create ());
    count = 0;
    total_pushed = 0;
  }

(** [push t ~update ~ptr ~level ~high ~stack ~stamp] enqueues the node.
    If it is already queued: with [update = true] (caller holds the node's
    lock, so its info is at least as recent) the entry is refreshed; with
    [update = false] (§5.4's "should not update" case — re-queueing without
    the node's lock) the existing, more recent entry wins. *)
let push t ~update ~ptr ~level ~high ~stack ~stamp =
  (* Invariant check before the mutex: an out-of-range level previously
     raised [Index_out_of_bounds] from the unchecked [buckets.(level)]
     inside the critical section — the mutex stayed locked (poisoning
     every later push/pop) and the entry sat half-registered in [by_ptr]
     with no bucket to pop it from. 64 levels bound any tree this store
     can address; hitting this is a caller bug, reported as such before
     any state is touched. *)
  if level < 0 || level >= max_levels then
    invalid_arg
      (Printf.sprintf "Cqueue.push: level %d outside [0, %d)" level max_levels);
  Mutex.lock t.mutex;
  (match Hashtbl.find_opt t.by_ptr ptr with
  | Some e when e.live ->
      if update then begin
        e.high <- high;
        e.stack <- stack;
        e.stamp <- stamp
      end
  | Some _ | None ->
      let e = { ptr; level; high; stack; stamp; live = true } in
      Hashtbl.replace t.by_ptr ptr e;
      Queue.push e t.buckets.(level);
      t.count <- t.count + 1;
      t.total_pushed <- t.total_pushed + 1);
  Mutex.unlock t.mutex

(** Pop the entry with the highest level; [None] when empty. *)
let pop t =
  Mutex.lock t.mutex;
  let result = ref None in
  let lvl = ref (max_levels - 1) in
  while !result = None && !lvl >= 0 do
    let q = t.buckets.(!lvl) in
    while !result = None && not (Queue.is_empty q) do
      let e = Queue.pop q in
      if e.live then begin
        e.live <- false;
        Hashtbl.remove t.by_ptr e.ptr;
        t.count <- t.count - 1;
        result := Some e
      end
    done;
    decr lvl
  done;
  Mutex.unlock t.mutex;
  !result

(** Drop a queued node (it was deleted by a merge, §5.4). *)
let remove t ptr =
  Mutex.lock t.mutex;
  (match Hashtbl.find_opt t.by_ptr ptr with
  | Some e when e.live ->
      e.live <- false;
      Hashtbl.remove t.by_ptr ptr;
      t.count <- t.count - 1
  | Some _ | None -> ());
  Mutex.unlock t.mutex

let length t =
  Mutex.lock t.mutex;
  let n = t.count in
  Mutex.unlock t.mutex;
  n

let is_empty t = length t = 0

let total_pushed t =
  Mutex.lock t.mutex;
  let n = t.total_pushed in
  Mutex.unlock t.mutex;
  n
