(** Shared restructuring steps of the compression processes (§5.2, §5.4):
    merging / redistributing a pair of adjacent siblings under their
    parent's lock, and collapsing the root.

    Lock discipline (Theorem 2): the parent F is locked first, then the two
    adjacent children — three simultaneous locks, arcs only go downwards or
    to a sibling under the already-locked parent, so no cycle can form with
    the one-lock insertions.

    Rewrite order (§5.2, crediting Rechter & Salzberg): the child that
    {e gains} data is rewritten first, then the parent, then the other
    child. Each node is unlocked immediately after it is rewritten. This
    confines the reader "wrong node" hazard to case (2): data moved from B
    leftwards into A while a reader was en route to B — which the reader
    detects via B's low value and handles by restarting. *)

open Repro_storage

(** Ablation toggle (benchmarks only): when true, redistribution rewrites
    the {e losing} child first — the opposite of the paper's advice — so
    the cost of the advice can be measured as extra case-(2) restarts.
    Global and unsynchronised by design: set it before a run, never
    during. *)
let ablate_losing_child_first = ref false

module Make_on_store (K : Key.S) (S : Page_store.S with type key = K.t) = struct
  module N = Node.Make (K)
  module A = Access.Make_on_store (K) (S)
  open Handle

  type outcome = Merged | Redistributed | Untouched

  (* Enqueue [ptr] (whose lock the caller holds) for later compression. *)
  let enqueue (ctx : ctx) queue ~ptr ~level ~high ~stack =
    Cqueue.push queue ~update:true ~ptr ~level ~high ~stack ~stamp:0;
    ctx.stats.Stats.enqueued <- ctx.stats.Stats.enqueued + 1

  (** Rearrange the adjacent pair (A = [one], B = [two]) under parent [f]
      (locked at [fptr]); [right_slot] is B's slot in [f]. All three locks
      are held on entry and released here, each immediately after its node
      is rewritten. With [enqueue_children] (the queue-driven mode, §5.4),
      nodes that end up (or remain) sparse are pushed onto the queue while
      their lock is held; [stack] is the path above the children's level. *)
  let rearrange t (ctx : ctx) ?queue ~fptr ~f ~right_slot ~one_ptr ~(a : K.t Node.t)
      ~two_ptr ~(b : K.t Node.t) ~enqueue_children ~stack () : outcome =
    let queue = match queue with Some q -> q | None -> t.queue in
    let k = t.order in
    let sparse n = Node.is_sparse ~order:k n in
    let parent_stack = match stack with _ :: rest -> rest | [] -> [] in
    if not (sparse a || sparse b) then begin
      (* "A does not have to be compressed, since it is now at least half
         full": unlock without rewriting. *)
      A.unlock t ctx one_ptr;
      A.unlock t ctx fptr;
      A.unlock t ctx two_ptr;
      Untouched
    end
    else if N.can_merge ~order:k a b then begin
      (* All pairs fit in A: B's contents move left into A, B is deleted,
         and the pair (old high of A, ptr to B) disappears from F. *)
      let merged = N.merge a b in
      let f' = N.remove_merged_pair f ~right_slot in
      A.put t ctx one_ptr merged;
      if enqueue_children && sparse merged && not merged.Node.is_root then
        enqueue ctx queue ~ptr:one_ptr ~level:merged.Node.level ~high:merged.Node.high
          ~stack;
      A.unlock t ctx one_ptr;
      A.put t ctx fptr f';
      if enqueue_children && sparse f' && not f'.Node.is_root then
        enqueue ctx queue ~ptr:fptr ~level:f'.Node.level ~high:f'.Node.high
          ~stack:parent_stack;
      A.unlock t ctx fptr;
      A.put t ctx two_ptr (N.mark_deleted b ~fwd:one_ptr);
      Cqueue.remove queue two_ptr;
      if queue != t.queue then Cqueue.remove t.queue two_ptr;
      Epoch.retire t.epoch two_ptr;
      A.unlock t ctx two_ptr;
      ctx.stats.Stats.merges <- ctx.stats.Stats.merges + 1;
      Merged
    end
    else begin
      (* Together more than 2k pairs: shift pairs so both hold at least k.
         The gaining child is rewritten first. *)
      let a', b', sep = N.redistribute a b in
      let f' = N.replace_separator f ~right_slot ~sep in
      let gains_left = Node.nkeys a' > Node.nkeys a in
      let gains_left = if !ablate_losing_child_first then not gains_left else gains_left in
      if gains_left then begin
        A.put t ctx one_ptr a';
        A.unlock t ctx one_ptr;
        A.put t ctx fptr f';
        A.unlock t ctx fptr;
        A.put t ctx two_ptr b';
        A.unlock t ctx two_ptr
      end
      else begin
        A.put t ctx two_ptr b';
        A.unlock t ctx two_ptr;
        A.put t ctx fptr f';
        A.unlock t ctx fptr;
        A.put t ctx one_ptr a';
        A.unlock t ctx one_ptr
      end;
      ctx.stats.Stats.redistributions <- ctx.stats.Stats.redistributions + 1;
      Redistributed
    end

  (* Make [new_root_ptr] (locked, already rewritten with the root bit set,
     prime block updated, lock released by caller) the forwarding target of
     the removed chain. *)
  let retire_chain t ctx ~fwd chain =
    List.iter
      (fun ptr ->
        let n = S.get t.store ptr in
        A.put t ctx ptr (N.mark_deleted n ~fwd);
        Cqueue.remove t.queue ptr;
        Epoch.retire t.epoch ptr;
        A.unlock t ctx ptr)
      chain

  (** Merge the two children of root [f] (locked at [fptr]) into a new
      root, reducing the height (§5.4's second special case). On success
      all locks (including [fptr]'s) are consumed and [true] is returned;
      on failure the children are unlocked but [fptr] stays locked so the
      caller can fall back to an ordinary pair rearrangement. *)
  let collapse_two_children t (ctx : ctx) ~fptr ~(f : K.t Node.t) : bool =
    assert (Node.nkeys f = 1);
    let left = f.Node.ptrs.(0) and right = f.Node.ptrs.(1) in
    A.lock t ctx left;
    let ln = S.get t.store left in
    if Node.is_deleted ln || ln.Node.link <> Some right then begin
      A.unlock t ctx left;
      false
    end
    else begin
      A.lock t ctx right;
      let rn = S.get t.store right in
      if Node.is_deleted rn || rn.Node.link <> None || not (N.can_merge ~order:t.order ln rn)
      then begin
        A.unlock t ctx right;
        A.unlock t ctx left;
        false
      end
      else begin
        let merged = { (N.merge ln rn) with Node.is_root = true } in
        A.put t ctx left merged;
        Prime_block.collapse_to t.prime ~level:merged.Node.level ~root_ptr:left;
        A.unlock t ctx left;
        A.put t ctx right (N.mark_deleted rn ~fwd:left);
        Cqueue.remove t.queue right;
        Epoch.retire t.epoch right;
        A.unlock t ctx right;
        A.put t ctx fptr (N.mark_deleted f ~fwd:left);
        Cqueue.remove t.queue fptr;
        Epoch.retire t.epoch fptr;
        A.unlock t ctx fptr;
        ctx.stats.Stats.merges <- ctx.stats.Stats.merges + 1;
        true
      end
    end

  (** Attempt to reduce the tree's height (§5.4's special cases). Locks the
      root; if the root has a single child, walks the single-child chain
      down (any number of levels) to the first node D with more than one
      child or a leaf, makes D the new root, and tombstones the chain. If
      the root has exactly two children that fit in one node, merges them
      into a new root. Returns [true] if the height changed.

      The chain walk aborts if any node on it has a non-nil link: then
      other nodes exist at that level — their pairs are pending insertion
      into the level above, so collapsing would strand them. *)
  let try_collapse_root t (ctx : ctx) : bool =
    let prime = Prime_block.read t.prime in
    let root_ptr = Prime_block.root prime in
    A.lock t ctx root_ptr;
    let r = S.get t.store root_ptr in
    if Node.is_deleted r || not r.Node.is_root || Node.is_leaf r then begin
      A.unlock t ctx root_ptr;
      false
    end
    else if Node.nkeys r = 0 then begin
      (* Single child: walk down while each node is the only one at its
         level (link = nil) and has a single child. *)
      let rec walk locked ptr =
        A.lock t ctx ptr;
        let n = S.get t.store ptr in
        if n.Node.link <> None || Node.is_deleted n then begin
          (* More nodes at this level (pending pair insertions above) —
             cannot collapse; release everything. *)
          A.unlock t ctx ptr;
          List.iter (A.unlock t ctx) locked;
          false
        end
        else if (not (Node.is_leaf n)) && Node.nkeys n = 0 then
          walk (ptr :: locked) n.Node.ptrs.(0)
        else begin
          (* n is the new root. Per §5.4: rewrite it with the root bit on,
             rewrite the prime block, release its lock, then tombstone the
             chain top-down. *)
          A.put t ctx ptr { n with Node.is_root = true };
          Prime_block.collapse_to t.prime ~level:n.Node.level ~root_ptr:ptr;
          A.unlock t ctx ptr;
          retire_chain t ctx ~fwd:ptr (List.rev locked);
          true
        end
      in
      walk [ root_ptr ] r.Node.ptrs.(0)
    end
    else if Node.nkeys r = 1 then begin
      (* Two children: mergeable only if the left's link is the right and
         the right's link is nil (no pending siblings at that level). *)
      if collapse_two_children t ctx ~fptr:root_ptr ~f:r then true
      else begin
        A.unlock t ctx root_ptr;
        false
      end
    end
    else begin
      A.unlock t ctx root_ptr;
      false
    end
end

module Make (K : Key.S) = Make_on_store (K) (Store.For_key (K))
