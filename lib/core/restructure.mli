(** Shared restructuring steps of the compression processes (§5.2, §5.4):
    merge / redistribute an adjacent sibling pair under the parent's lock
    (three locks held: parent first, then the two children — Theorem 2's
    deadlock-freedom argument), and root collapses. Internal to
    {!Compress} and {!Compactor}. *)

open Repro_storage

(** Ablation toggle (benchmarks only): rewrite the losing child first
    during redistribution, inverting the paper's §5.2 advice, to measure
    the advice's effect on reader restarts. Set before a run only. *)
val ablate_losing_child_first : bool ref

module Make_on_store (K : Key.S) (S : Page_store.S with type key = K.t) : sig
  type outcome = Merged | Redistributed | Untouched

  val rearrange :
    (K.t, S.t) Handle.t ->
    Handle.ctx ->
    ?queue:K.t Cqueue.t ->
    fptr:Node.ptr ->
    f:K.t Node.t ->
    right_slot:int ->
    one_ptr:Node.ptr ->
    a:K.t Node.t ->
    two_ptr:Node.ptr ->
    b:K.t Node.t ->
    enqueue_children:bool ->
    stack:Node.ptr list ->
    unit ->
    outcome
  (** Rearrange the pair (A = [one], B = [two]) under parent [f]. All
      three locks are held on entry and consumed here — each node is
      unlocked immediately after it is rewritten, the gaining child first
      (the §5.2 rewrite order). With [enqueue_children], nodes left sparse
      are pushed onto [queue] (default: the tree's shared queue) while
      their lock is held. *)

  val collapse_two_children :
    (K.t, S.t) Handle.t -> Handle.ctx -> fptr:Node.ptr -> f:K.t Node.t -> bool
  (** Merge the two children of root [f] (locked) into a new root (§5.4).
      On success all locks are consumed; on failure the children are
      unlocked but [fptr] stays locked for the caller's fallback. *)

  val try_collapse_root : (K.t, S.t) Handle.t -> Handle.ctx -> bool
  (** Reduce the height when the root has a single child (walking the
      single-child chain down any number of levels) or two mergeable
      children. [true] when the height changed. *)
end

module Make (K : Key.S) : module type of Make_on_store (K) (Store.For_key (K))
