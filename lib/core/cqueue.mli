(** Compression work queue (§5.4): deletions enqueue under-half-full
    nodes; compactors pop them, higher tree levels first (footnote 17).
    Mutex-protected ("accessing the common queue requires locking it with
    an exclusive lock"); entries are deduplicated by node pointer. *)

open Repro_storage

type 'k entry = {
  ptr : Node.ptr;
  level : int;
  mutable high : 'k Bound.t;
  mutable stack : Node.ptr list;  (** path from the root; top = parent level *)
  mutable stamp : int;
  mutable live : bool;
}

type 'k t

val create : unit -> 'k t

val push :
  'k t ->
  update:bool ->
  ptr:Node.ptr ->
  level:int ->
  high:'k Bound.t ->
  stack:Node.ptr list ->
  stamp:int ->
  unit
(** If the node is already queued: [update = true] (caller holds the
    node's lock, so its info is at least as recent) refreshes the entry;
    [update = false] (§5.4's re-queue-without-lock case) keeps the
    existing, more recent entry.
    @raise Invalid_argument when [level] is outside [0, 64) — checked
    before any queue state (or its mutex) is touched. *)

val pop : 'k t -> 'k entry option
(** Highest level first; FIFO within a level. *)

val remove : 'k t -> Node.ptr -> unit
(** Drop a node deleted by a merge; no-op if absent. *)

val length : 'k t -> int
val is_empty : 'k t -> bool
val total_pushed : 'k t -> int
