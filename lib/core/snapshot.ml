(** Tree persistence: serialise a tree to bytes and back, two ways.

    {b Physical} ([save], quiescent): exercises the on-disk page format
    ({!Page_codec}) end-to-end — header (magic BLK1, order, height), then
    for each level top-down: node count followed by [(old_ptr, encoded
    node)] pairs in chain order. Page ids are remapped on load (the
    paper's trees live on disk with stable page addresses; in this
    in-memory reproduction a snapshot is a compaction point, so
    tombstones are dropped and ids renumbered).

    {b Logical} ([save_online], lock-free): a leaf-chain scan
    ({!Sagiv.Make_on_store.fold_all}) serialised as sorted pairs (magic
    BLK2, order, count, repeated [(key, payload)]). No quiescence required —
    this is the online-backup path; run it under an MVCC snapshot pin
    for a point-in-time image. Loading bulk-loads a fresh packed tree.

    [load] dispatches on the magic, so either kind restores. *)

open Repro_storage

let magic = 0x42_4C_4B_31 (* "BLK1" *)
let magic_logical = 0x42_4C_4B_32 (* "BLK2" *)

exception Corrupt of string

module Make_on_store (K : Key.S) (S : Page_store.S with type key = K.t) = struct
  module N = Node.Make (K)
  module C = Page_codec.Make (K)
  module T = Sagiv.Make_on_store (K) (S)
  open Handle

  let save_buf (t : (K.t, S.t) Handle.t) buf =
    (* The chain walk below assumes no concurrent restructuring; an epoch
       pin is cheap, definite evidence an operation is in flight. *)
    if Epoch.min_pinned t.epoch <> max_int then
      invalid_arg "Snapshot.save: tree not quiescent (operation in flight)";
    let prime = Prime_block.read t.prime in
    Buffer.add_int32_le buf (Int32.of_int magic);
    Buffer.add_int32_le buf (Int32.of_int t.order);
    Buffer.add_int32_le buf (Int32.of_int prime.Prime_block.levels);
    for i = 0 to prime.Prime_block.levels - 1 do
      let level = prime.Prime_block.levels - 1 - i in
      let nodes = ref [] in
      (match Prime_block.leftmost_at prime ~level with
      | None -> raise (Corrupt "missing level during save")
      | Some p ->
          let rec go ptr =
            let n = S.get t.store ptr in
            nodes := (ptr, n) :: !nodes;
            match n.Node.link with Some q -> go q | None -> ()
          in
          go p);
      let nodes = List.rev !nodes in
      Buffer.add_int32_le buf (Int32.of_int (List.length nodes));
      List.iter
        (fun (ptr, n) ->
          Buffer.add_int64_le buf (Int64.of_int ptr);
          C.encode buf n)
        nodes
    done

  let save t =
    let buf = Buffer.create 4096 in
    save_buf t buf;
    Buffer.to_bytes buf

  (** Online backup: serialise the logical content (sorted pairs) with a
      lock-free scan — writers keep running. The image is exact for
      every pair stable across the scan; hold an MVCC snapshot pin and
      the scan is a point-in-time cut of the pairs (the caller resolves
      versions; the tree's pairs themselves never repoint). *)
  let save_online_buf (t : (K.t, S.t) Handle.t) (ctx : Handle.ctx) buf =
    let pairs =
      List.rev (T.fold_all t ctx ~init:[] (fun acc k p -> (k, p) :: acc))
    in
    Buffer.add_int32_le buf (Int32.of_int magic_logical);
    Buffer.add_int32_le buf (Int32.of_int t.order);
    Buffer.add_int64_le buf (Int64.of_int (List.length pairs));
    List.iter
      (fun (k, p) ->
        K.encode buf k;
        Buffer.add_int64_le buf (Int64.of_int p))
      pairs

  let save_online t ctx =
    let buf = Buffer.create 4096 in
    save_online_buf t ctx buf;
    Buffer.to_bytes buf

  let load_logical bytes : (K.t, S.t) Handle.t =
    let order = Int32.to_int (Bytes.get_int32_le bytes 4) in
    let count = Int64.to_int (Bytes.get_int64_le bytes 8) in
    if order < 1 || count < 0 then raise (Corrupt "bad logical snapshot header");
    let pos = ref 16 in
    let pairs =
      List.init count (fun _ ->
          let k, p = K.decode bytes ~pos:!pos in
          if p + 8 > Bytes.length bytes then
            raise (Corrupt "truncated logical snapshot");
          let payload = Int64.to_int (Bytes.get_int64_le bytes p) in
          pos := p + 8;
          (k, payload))
    in
    match T.of_sorted ~order pairs with
    | t -> t
    | exception Invalid_argument _ -> raise (Corrupt "unsorted logical snapshot")

  let low_is_neg_inf n =
    match n.Node.low with Bound.Neg_inf -> true | Bound.Key _ | Bound.Pos_inf -> false

  exception Logical

  let load_physical bytes : (K.t, S.t) Handle.t =
    let pos = ref 0 in
    let read_i32 () =
      let v = Int32.to_int (Bytes.get_int32_le bytes !pos) in
      pos := !pos + 4;
      v
    in
    let read_i64 () =
      let v = Int64.to_int (Bytes.get_int64_le bytes !pos) in
      pos := !pos + 8;
      v
    in
    (match read_i32 () with
    | m when m = magic -> ()
    | m when m = magic_logical -> raise Logical
    | _ -> raise (Corrupt "bad snapshot magic"));
    let order = read_i32 () in
    let height = read_i32 () in
    if height < 1 then raise (Corrupt "bad height");
    (* First pass: decode everything, allocating new ids. *)
    let store = S.create () in
    let remap = Hashtbl.create 64 in
    let all = ref [] in
    for _ = 1 to height do
      let count = read_i32 () in
      for _ = 1 to count do
        let old_ptr = read_i64 () in
        let n, pos' = C.decode bytes ~pos:!pos in
        pos := pos';
        let new_ptr = S.alloc store n in
        Hashtbl.replace remap old_ptr new_ptr;
        all := (new_ptr, n) :: !all
      done
    done;
    let map_ptr p =
      match Hashtbl.find_opt remap p with
      | Some q -> q
      | None -> raise (Corrupt (Printf.sprintf "dangling pointer %d" p))
    in
    (* Second pass: rewrite internal pointers and links under new ids. *)
    List.iter
      (fun (new_ptr, n) ->
        let ptrs = if Node.is_leaf n then n.Node.ptrs else Array.map map_ptr n.Node.ptrs in
        let link = Option.map map_ptr n.Node.link in
        S.put store new_ptr { n with Node.ptrs; link })
      !all;
    (* Rebuild the prime block: leftmost node per level. [S.iter] requires
       quiescence, which holds by construction — [store] is private to
       this load and no handle over it has been published yet. *)
    let leftmost = Array.make height Node.nil in
    S.iter store (fun p n ->
        if low_is_neg_inf n then leftmost.(n.Node.level) <- p);
    Array.iteri
      (fun level p -> if p = Node.nil then raise (Corrupt (Printf.sprintf "level %d lost" level)))
      leftmost;
    let prime = Prime_block.restore ~levels:height ~leftmost in
    {
      store;
      prime;
      epoch = Epoch.create ();
      order;
      queue = Cqueue.create ();
      enqueue_on_delete = false;
    }

  let load bytes : (K.t, S.t) Handle.t =
    if Bytes.length bytes < 16 then raise (Corrupt "snapshot too short");
    try load_physical bytes with Logical -> load_logical bytes
end

module Make (K : Key.S) = Make_on_store (K) (Store.For_key (K))
