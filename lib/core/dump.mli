(** Debug pretty-printing of a quiescent tree, level by level. *)

open Repro_storage

module Make_on_store (K : Key.S) (S : Page_store.S with type key = K.t) : sig
  val pp : Format.formatter -> (K.t, S.t) Handle.t -> unit
  val to_string : (K.t, S.t) Handle.t -> string
  val print : (K.t, S.t) Handle.t -> unit
end

module Make (K : Key.S) : module type of Make_on_store (K) (Store.For_key (K))
