(** Sagiv's B*-tree with overtaking: the paper's primary contribution.

    Searches take no locks; an insertion or deletion locks {b one node at
    a time} (the paper's improvement over Lehman–Yao's 2–3); compression
    runs in {!Compress} (background scans, §5.1) and {!Compactor}
    (queue-driven, §5.4). All operations may run concurrently from any
    number of domains; each domain needs its own {!ctx}.

    The tree is a functor over the key type {e and} a
    {!Repro_storage.Page_store.S} backend ({!Make_on_store});
    {!Make} is the in-memory convenience instantiation over {!Store}. *)

open Repro_storage

module Make_on_store (K : Key.S) (S : Page_store.S with type key = K.t) : sig
  type t = (K.t, S.t) Handle.t
  type ctx = Handle.ctx

  val ctx : slot:int -> ctx
  (** A worker context. [slot] must be unique per concurrent domain (it
      indexes the epoch-reclamation table). *)

  val create : ?order:int -> ?enqueue_on_delete:bool -> ?store:S.t -> unit -> t
  (** [order] is the paper's k: non-root nodes hold between k and 2k pairs
      (default 8). [enqueue_on_delete] (default false) makes deletions
      push under-half-full leaves onto the compression queue (§5.4); off,
      deletions behave exactly as in Lehman–Yao / §4. [store] supplies
      the (empty) page store; default [S.create ()]. *)

  val order : t -> int

  val of_sorted :
    ?order:int -> ?fill:float -> ?store:S.t -> (K.t * Node.ptr) list -> t
  (** Bulk-load from strictly ascending (key, payload) pairs: a quiescent
      constructor packing nodes to [fill] (default 0.9) of capacity —
      much faster and denser than repeated {!insert}.
      @raise Invalid_argument on unsorted keys. *)

  val bulk_add : ?fill:float -> t -> (K.t * Node.ptr) list -> bool
  (** Pack strictly ascending pairs into an {e empty} tree in place —
      {!of_sorted}'s fast path for callers handed an already-created
      handle (preload). Returns [false] without touching anything when
      the tree is not empty (fall back to {!insert}). Quiescent only.
      @raise Invalid_argument on unsorted keys. *)

  val search : t -> ctx -> K.t -> Node.ptr option
  (** The record pointer stored with the key; entirely lock-free. *)

  val insert : t -> ctx -> K.t -> Node.ptr -> [ `Ok | `Duplicate ]
  (** Insert a (key, record pointer) pair. The tree is a dense index:
      an existing key is reported, never overwritten. *)

  val delete : t -> ctx -> K.t -> bool
  (** Remove the key's pair by rewriting its leaf (§4); [true] if present. *)

  val take : t -> ctx -> K.t -> Node.ptr option
  (** {!delete} returning the record pointer that was removed (for callers
      that own the records, e.g. {!Kv}). *)

  val update : t -> ctx -> K.t -> Node.ptr -> Node.ptr option
  (** Atomically repoint the key's pair at a new record pointer; returns
      the old pointer, or [None] when the key is absent. *)

  val fold_range :
    t -> ctx -> lo:K.t -> hi:K.t -> init:'a -> ('a -> K.t -> Node.ptr -> 'a) -> 'a
  (** Lock-free ordered fold over pairs with [lo <= key <= hi] along the
      leaf chain. Keys are emitted strictly ascending, exactly once; every
      pair present for the whole scan is emitted; pairs concurrently
      inserted/deleted/moved may or may not be. Exact when quiescent. *)

  val range : t -> ctx -> lo:K.t -> hi:K.t -> (K.t * Node.ptr) list

  val fold_all : t -> ctx -> init:'a -> ('a -> K.t -> Node.ptr -> 'a) -> 'a
  (** {!fold_range} without bounds: lock-free ordered fold over every
      pair, starting at the leftmost leaf. Same concurrency contract.
      The online save/validate paths are built on this. *)

  val cardinal : t -> int
  (** Number of stored keys (leaf-chain walk; quiescent only). *)

  val to_list : t -> (K.t * Node.ptr) list
  (** All pairs in order (quiescent only). *)

  val height : t -> int

  val reclaim : t -> int
  (** Release deleted pages whose grace period has passed (§5.3); returns
      how many. Call periodically or after compression. *)

  exception Corrupt of string

  val encode_meta : t -> Bytes.t
  (** The metadata blob {!flush}/{!commit} persist (magic, order, levels,
      leftmost pointers). Exposed so layered stores ({!Repro_core.Mvcc}'s
      durable mode) can append their own extension after it —
      {!open_existing} tolerates trailing bytes. *)

  val flush : t -> unit
  (** Persist the tree's geometry (order, levels, leftmost pointers) into
      the store's metadata blob and {!Page_store.S.sync} the store.
      Quiescent only. On a durable store ({!Paged_store}) the tree then
      survives close + reopen; on {!Store} it is a harmless no-op beyond
      recording the metadata. *)

  val commit : t -> unit
  (** Durably commit every {e completed} operation: refresh the metadata
      blob and {!Page_store.S.commit} the store. On a WAL-mode
      {!Paged_store} this is a group commit — concurrency-safe, no
      quiescence needed; on other durable stores it degrades to a full
      [sync] (then quiescent-only); in memory it is a no-op. *)

  val open_existing : ?enqueue_on_delete:bool -> S.t -> t
  (** Rebuild a handle over a store that was {!flush}ed (and possibly
      closed and reopened). Never run two handles over one store
      concurrently — they would have separate epochs and queues.
      @raise Corrupt when the store holds no (or damaged) tree metadata. *)
end

module Make (K : Key.S) : module type of Make_on_store (K) (Store.For_key (K))
(** The tree over the in-memory {!Store} (all historical call sites). *)
