(** Shared tree navigation: descent, right-moves, restart, lock-validate.

    Implements the paper's traversal discipline once, for use by searches,
    insertions, deletions (Figs 4–5) and by the compression processes'
    parent search (§5.4, "the search for F is done in the same way as the
    search, in the procedure insert, for the parent of a node that has been
    split").

    Readers take {e no} locks. A traversal handles three hazards:
    - [v > high]: follow the link right (the B-link move, Fig 4);
    - a deleted node: follow its forwarding pointer (§5.2 case 1);
    - [v <= low]: the data moved left past us — restart (§5.2 case 2),
      first by backtracking through the descent stack, then from the root.

    Targets are {!Bound.t} values: logical operations navigate by
    [Key k]; compression navigates by a node's high value, which can be
    [+inf]. *)

open Repro_storage

(** Ablation toggle (benchmarks only): when false, restarts go straight to
    the root instead of backtracking through the descent stack (§5.2's
    refinement), so the refinement's value can be measured. Set before a
    run only. *)
let backtrack_on_restart = ref true

module Make_on_store (K : Key.S) (S : Page_store.S with type key = K.t) = struct
  module N = Node.Make (K)
  open Handle

  type tree = (K.t, S.t) Handle.t

  let bcompare = N.bcompare

  (* The current traversal is invalid: the target no longer belongs where
     we are looking. Callers backtrack / restart. *)
  exception Restart

  let get (t : tree) (ctx : ctx) ptr =
    ctx.stats.Stats.gets <- ctx.stats.Stats.gets + 1;
    S.get t.store ptr

  let put (t : tree) (ctx : ctx) ptr n =
    ctx.stats.Stats.puts <- ctx.stats.Stats.puts + 1;
    S.put t.store ptr n

  let lock (t : tree) (ctx : ctx) ptr =
    S.lock t.store ptr;
    Stats.on_lock ctx.stats

  let unlock (t : tree) (ctx : ctx) ptr =
    Stats.on_unlock ctx.stats;
    S.unlock t.store ptr

  (* Follow tombstone forwarding until a live node at the expected level.
     A chain that leaves the level (a removed root forwards downwards) or
     dead-ends means the traversal is stale. *)
  let rec resolve t ctx ~level ptr n =
    match n.Node.state with
    | Node.Live -> if n.Node.level = level then (ptr, n) else raise Restart
    | Node.Deleted fwd ->
        ctx.stats.Stats.fwd_follows <- ctx.stats.Stats.fwd_follows + 1;
        if fwd = Node.nil then raise Restart
        else
          let n' = get t ctx fwd in
          resolve t ctx ~level fwd n'

  (* Descend from [ptr] (a node expected at [from_level]) to the node at
     [to_level] whose range contains [target], pushing descent steps onto
     [stack]. Pure reads; raises Restart on any staleness. *)
  let rec down t ctx target ~to_level ptr ~from_level stack =
    let n = get t ctx ptr in
    let ptr, n = resolve t ctx ~level:from_level ptr n in
    if bcompare target n.Node.low <= 0 then raise Restart
    else if bcompare target n.Node.high > 0 then begin
      ctx.stats.Stats.link_follows <- ctx.stats.Stats.link_follows + 1;
      match n.Node.link with
      | Some p -> down t ctx target ~to_level p ~from_level stack
      | None -> raise Restart (* impossible: high = +inf accepts all targets *)
    end
    else if from_level = to_level then (ptr, n, stack)
    else
      down t ctx target ~to_level (N.child_for_b n target) ~from_level:(from_level - 1)
        (ptr :: stack)

  type on_missing_level = Wait | Give_up

  exception Level_missing

  (* Descend from the root. If the tree is not yet tall enough for
     [to_level], either wait for the concurrent root creation to land
     (§3.3) or give up (compactor: the level became the root, §5.4). *)
  let rec from_root t ctx target ~to_level ~on_missing (backoff : Repro_util.Backoff.t) =
    let prime = Prime_block.read t.prime in
    let height = prime.Prime_block.levels in
    if height - 1 < to_level then begin
      match on_missing with
      | Give_up -> raise Level_missing
      | Wait ->
          ctx.stats.Stats.waits <- ctx.stats.Stats.waits + 1;
          Repro_util.Backoff.once backoff;
          from_root t ctx target ~to_level ~on_missing backoff
    end
    else
      try down t ctx target ~to_level (Prime_block.root prime) ~from_level:(height - 1) []
      with Restart | Page_store.Freed_page _ ->
        ctx.stats.Stats.restarts <- ctx.stats.Stats.restarts + 1;
        Repro_util.Backoff.once backoff;
        from_root t ctx target ~to_level ~on_missing backoff

  (* Re-enter a traversal after a Restart: try the stack entries (the
     paper's backtracking refinement, §5.2), then the root. Stack entries
     can be stale in every way — deleted, reused at another level, or to
     the right of the target — each is validated before use. *)
  let rec reenter t ctx target ~to_level ~on_missing stack =
    let stack = if !backtrack_on_restart then stack else [] in
    match stack with
    | [] ->
        from_root t ctx target ~to_level ~on_missing (Repro_util.Backoff.create ())
    | p :: rest -> (
        match
          (try `Node (get t ctx p) with Page_store.Freed_page _ -> `Bad)
        with
        | `Bad -> reenter t ctx target ~to_level ~on_missing rest
        | `Node n ->
            if
              Node.is_deleted n || n.Node.level <= to_level
              || bcompare target n.Node.low <= 0
            then reenter t ctx target ~to_level ~on_missing rest
            else (
              try down t ctx target ~to_level p ~from_level:n.Node.level rest
              with Restart | Page_store.Freed_page _ ->
                ctx.stats.Stats.restarts <- ctx.stats.Stats.restarts + 1;
                reenter t ctx target ~to_level ~on_missing rest))

  (** Locate (without locking) the node at [to_level] whose range contains
      [target]. Returns [(ptr, node, stack)]; the stack holds the pointers
      through which the traversal moved down (top = [to_level + 1]). *)
  let locate t ctx target ~to_level ~on_missing =
    reenter t ctx target ~to_level ~on_missing []

  (** Locate and {e lock} the node for [target] at [level], revalidating
      under the lock as in Fig 5: the node may have been split between the
      read and the lock ([target > high] ⇒ unlock and move right), or
      compressed away ([deleted] / [target <= low] ⇒ unlock and restart).
      [start] is an optional hint: a pointer believed to be at [level] and
      at/left of the target (an insertion's popped stack entry). *)
  let acquire t ctx target ~level ~on_missing ?start ~stack () =
    let rec from_hint ptr stack =
      match
        (try
           let n = get t ctx ptr in
           let ptr, n = resolve t ctx ~level ptr n in
           if bcompare target n.Node.low <= 0 then `Restart
           else if bcompare target n.Node.high > 0 then begin
             ctx.stats.Stats.link_follows <- ctx.stats.Stats.link_follows + 1;
             match n.Node.link with Some p -> `Right p | None -> `Restart
           end
           else `Candidate ptr
         with Restart | Page_store.Freed_page _ -> `Restart)
      with
      | `Right p -> from_hint p stack
      | `Candidate ptr -> try_lock_at ptr stack
      | `Restart ->
          ctx.stats.Stats.restarts <- ctx.stats.Stats.restarts + 1;
          relocate stack
    and relocate stack =
      let ptr, _n, stack = reenter t ctx target ~to_level:level ~on_missing stack in
      try_lock_at ptr stack
    and try_lock_at ptr stack =
      lock t ctx ptr;
      let n = get t ctx ptr in
      if Node.is_deleted n || n.Node.level <> level || bcompare target n.Node.low <= 0
      then begin
        unlock t ctx ptr;
        ctx.stats.Stats.restarts <- ctx.stats.Stats.restarts + 1;
        relocate stack
      end
      else if bcompare target n.Node.high > 0 then begin
        (* Split slipped in between our read and our lock (Fig 5's
           [v > highvalue] branch): release and chase the link. *)
        unlock t ctx ptr;
        ctx.stats.Stats.retries <- ctx.stats.Stats.retries + 1;
        match n.Node.link with
        | Some p -> from_hint p stack
        | None -> relocate stack
      end
      else (ptr, n, stack)
    in
    match start with Some p -> from_hint p stack | None -> relocate stack
end

(** The access module over the in-memory {!Store} (the historical
    interface; most callers use this through {!Sagiv.Make}). *)
module Make (K : Key.S) = Make_on_store (K) (Store.For_key (K))
