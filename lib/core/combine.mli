(** Leaf-level combining for hot keys (flat-combining / elimination
    array). Concurrent mutators of the same hot key publish their
    operations in a hashed slot array; one combiner per slot drains the
    list, applies at most two physical tree operations per key (one
    delete, one insert) and hands every publisher a derived outcome that
    is a valid linearization of the whole group. Reads never enter the
    array. See combine.ml's header for the linearization argument. *)

type op = Insert of int  (** payload *) | Delete

type outcome = Inserted of [ `Ok | `Duplicate ] | Deleted of bool

type t

type counters = {
  c_registered : int;  (** operations that entered the array *)
  c_installs : int;  (** non-empty combiner drains *)
  c_combined : int;  (** outcomes derived without a physical tree op *)
  c_applied : int;  (** physical tree operations performed *)
}

val create : ?slots:int -> unit -> t
(** [slots] (default 64) is the combining-array width; keys are routed
    by the same stable hash as shard routing. *)

val mutate :
  t ->
  key:int ->
  op:op ->
  insert:(int -> int -> [ `Ok | `Duplicate ]) ->
  delete:(int -> bool) ->
  outcome
(** Publish [op] on [key] and spin until an outcome is available,
    becoming the combiner when the slot lock is free. [insert]/[delete]
    are the underlying tree operations; they are invoked only under the
    slot's combiner lock (so same-slot mutations are mutually excluded)
    and may be called with {e other} publishers' keys and payloads. *)

val counters : t -> counters
