(** Quiescent persistence through the binary page codec: serialise a tree
    to bytes and back. Page ids are renumbered on load and tombstones
    dropped (a snapshot is a compaction point). *)

open Repro_storage

exception Corrupt of string

module Make_on_store (K : Key.S) (S : Page_store.S with type key = K.t) : sig
  val save : (K.t, S.t) Handle.t -> Bytes.t
  (** The tree must be quiescent. *)

  val save_buf : (K.t, S.t) Handle.t -> Buffer.t -> unit

  val load : Bytes.t -> (K.t, S.t) Handle.t
  (** Rebuilds into a fresh [S.create ()] store.
      @raise Corrupt on a damaged snapshot. *)
end

module Make (K : Key.S) : module type of Make_on_store (K) (Store.For_key (K))
