(** Tree persistence through the binary page codec, two ways: [save] is
    the quiescent physical image (pages, BLK1; ids renumbered and
    tombstones dropped on load — a compaction point); [save_online] is a
    lock-free logical image (sorted pairs, BLK2) that runs with writers
    live — pin an MVCC snapshot around it for a point-in-time backup.
    [load] restores either. *)

open Repro_storage

exception Corrupt of string

module Make_on_store (K : Key.S) (S : Page_store.S with type key = K.t) : sig
  val save : (K.t, S.t) Handle.t -> Bytes.t
  (** Physical image. The tree must be quiescent. *)

  val save_buf : (K.t, S.t) Handle.t -> Buffer.t -> unit

  val save_online : (K.t, S.t) Handle.t -> Handle.ctx -> Bytes.t
  (** Logical image by lock-free scan — no quiescence needed; writers
      are never stalled. Exact for every pair stable across the scan. *)

  val save_online_buf : (K.t, S.t) Handle.t -> Handle.ctx -> Buffer.t -> unit

  val load : Bytes.t -> (K.t, S.t) Handle.t
  (** Rebuilds into a fresh [S.create ()] store, from either format.
      @raise Corrupt on a damaged snapshot. *)
end

module Make (K : Key.S) : module type of Make_on_store (K) (Store.For_key (K))
