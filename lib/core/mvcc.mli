(** Multi-version store: the Sagiv tree as a dense index over
    version-chained records ({!Repro_storage.Record_store}), giving
    lock-free point-in-time snapshot reads with zero writer stalls.
    Deletes are logical (tombstones); [vacuum] removes dead pairs behind
    every pin through a seal -> take -> retire barrier. Several stores
    can share one {!Repro_storage.Epoch} so a group snapshot is a single
    consistent cut across all of them (cross-shard scans). *)

open Repro_storage

module Make_on_store (K : Key.S) (S : Page_store.S with type key = K.t) : sig
  module T : module type of Sagiv.Make_on_store (K) (S)

  type 'v t
  type ctx = Handle.ctx

  val ctx : slot:int -> ctx

  val create :
    ?order:int ->
    ?enqueue_on_delete:bool ->
    ?epoch:Epoch.t ->
    ?size:('v -> int) ->
    unit ->
    'v t
  (** [epoch] shares a clock (and its pins) with other stores for group
      snapshots; [size] prices payloads for the bytes gauge. *)

  val tree : 'v t -> T.t
  val records : 'v t -> 'v Record_store.t
  val epoch : 'v t -> Epoch.t

  val get : 'v t -> ctx -> K.t -> 'v option
  (** Current value, lock-free. *)

  val insert : 'v t -> ctx -> K.t -> 'v -> [ `Ok | `Duplicate ]
  (** Insert-if-absent (resurrects tombstoned keys in place). *)

  val upsert : 'v t -> ctx -> K.t -> 'v -> unit
  (** Bind-or-overwrite: appends a live version. *)

  val delete : 'v t -> ctx -> K.t -> bool
  (** Logical delete (tombstone); [true] when the key was live. *)

  val fold_range :
    'v t -> ctx -> lo:K.t -> hi:K.t -> init:'a -> ('a -> K.t -> 'v -> 'a) -> 'a
  (** Current-time scan — weak (not a cut), tombstones skipped. *)

  val range : 'v t -> ctx -> lo:K.t -> hi:K.t -> (K.t * 'v) list
  val cardinal : 'v t -> int

  type snap

  val snap_epoch : snap -> int

  val snapshot : 'v t -> snap
  (** A consistent cut: pins a snapshot slot, ticks the clock, waits out
      writers already in flight (writers never wait). Release with
      {!release}. *)

  val snapshot_on : Epoch.t -> snap
  (** The cut protocol against a bare epoch manager (shared-clock
      composition outside this module). *)

  val snapshot_group : 'v t array -> snap
  (** One cut across stores sharing an epoch (single pin + tick + wait).
      @raise Invalid_argument when they do not share one. *)

  val release : snap -> unit
  (** Unpin (idempotent). Prune/vacuum horizons pass the cut after this. *)

  val snap_get : 'v t -> snap -> ctx -> K.t -> 'v option
  (** Point read at the cut. *)

  val snap_fold_range :
    'v t ->
    snap ->
    ctx ->
    lo:K.t ->
    hi:K.t ->
    init:'a ->
    ('a -> K.t -> 'v -> 'a) ->
    'a
  (** Consistent fold at the cut. *)

  val snap_range : 'v t -> snap -> ctx -> lo:K.t -> hi:K.t -> (K.t * 'v) list

  val vacuum : 'v t -> ctx -> int
  (** Prune cold version tails; physically remove pairs dead below every
      pin (seal -> take -> retire). Returns pairs removed. *)

  val reclaim : 'v t -> int
  (** Release record slots and tree pages whose grace period passed. *)

  val gc_pending : 'v t -> int
  val live_versions : 'v t -> int
  val pruned_versions : 'v t -> int
  val bytes_stored : 'v t -> int
  val min_pinned : 'v t -> int

  val io_stats : 'v t -> Repro_storage.Stats.io
  (** The MVCC gauges ([epoch_min_pinned], [snap_pins], [mvcc_versions],
      [mvcc_pruned]) as a {!Repro_storage.Stats.io} record with every
      other field zero — made to be {!Repro_storage.Stats.io_merge}d
      into a backing store's line. *)
end

module Make (K : Key.S) : module type of Make_on_store (K) (Store.For_key (K))
