(** Multi-version store: the Sagiv tree as a dense index over
    version-chained records ({!Repro_storage.Record_store}), giving
    lock-free point-in-time snapshot reads with zero writer stalls.
    Deletes are logical (tombstones); [vacuum] removes dead pairs behind
    every pin through a seal -> take -> retire barrier. Several stores
    can share one {!Repro_storage.Epoch} so a group snapshot is a single
    consistent cut across all of them (cross-shard scans). *)

open Repro_storage

(** {2 Durable representation (backend-independent)}

    Version chains persist as {e version-record (vrec) pages}: pseudo-nodes
    at {!Node.vrec_level} in the tree's own page store, carrying a flat
    int stream in their [ptrs] array (codec v3 varint-packs it). Record
    slots are grouped; each group serializes to a head page
    ([is_root = true]) plus link-chained continuations. The store's
    metadata blob grows a fixed extension (clock, prune horizon, slot
    frontier) after the Sagiv geometry. See doc/RECOVERY.md. *)

type meta_ext = {
  group_bits : int;  (** log2 slots per group *)
  clock : int;  (** epoch clock at persist — bounds every persisted stamp *)
  horizon : int;  (** [min_pinned] at persist — recovery re-prunes here *)
  frontier : int;  (** record-slot bump frontier *)
}

val encode_meta_ext : meta_ext -> Bytes.t

val decode_meta_ext : Bytes.t -> meta_ext option
(** Parse the extension from a full metadata blob (tree meta first);
    [None] = plain unversioned store. *)

exception Corrupt_vrec of string

val group_of_stream :
  dec:(int -> 'v) -> int array -> int * int * 'v Record_store.slot_state array
(** Decode a group's concatenated page stream:
    [(group, base_slot, states)]. Recovery and replica snapshot reads.
    @raise Corrupt_vrec on a malformed stream. *)

val stream_of_group :
  group:int ->
  group_bits:int ->
  enc:('v -> int) ->
  (int -> 'v Record_store.slot_state) ->
  int array * int * bool
(** Serialize a group from a slot-state reader:
    [(stream, version count, occupied)]. *)

module Make_on_store (K : Key.S) (S : Page_store.S with type key = K.t) : sig
  module T : module type of Sagiv.Make_on_store (K) (S)

  type 'v t
  type ctx = Handle.ctx

  val ctx : slot:int -> ctx

  val create :
    ?order:int ->
    ?enqueue_on_delete:bool ->
    ?epoch:Epoch.t ->
    ?size:('v -> int) ->
    unit ->
    'v t
  (** [epoch] shares a clock (and its pins) with other stores for group
      snapshots; [size] prices payloads for the bytes gauge. *)

  val tree : 'v t -> T.t
  val records : 'v t -> 'v Record_store.t
  val epoch : 'v t -> Epoch.t

  val get : 'v t -> ctx -> K.t -> 'v option
  (** Current value, lock-free. *)

  val insert : 'v t -> ctx -> K.t -> 'v -> [ `Ok | `Duplicate ]
  (** Insert-if-absent (resurrects tombstoned keys in place). *)

  val upsert : 'v t -> ctx -> K.t -> 'v -> unit
  (** Bind-or-overwrite: appends a live version. *)

  val delete : 'v t -> ctx -> K.t -> bool
  (** Logical delete (tombstone); [true] when the key was live. *)

  val fold_range :
    'v t -> ctx -> lo:K.t -> hi:K.t -> init:'a -> ('a -> K.t -> 'v -> 'a) -> 'a
  (** Current-time scan — weak (not a cut), tombstones skipped. *)

  val range : 'v t -> ctx -> lo:K.t -> hi:K.t -> (K.t * 'v) list
  val cardinal : 'v t -> int

  type snap

  val snap_epoch : snap -> int

  val snapshot : 'v t -> snap
  (** A consistent cut: pins a snapshot slot, ticks the clock, waits out
      writers already in flight (writers never wait). Release with
      {!release}. *)

  val snapshot_on : Epoch.t -> snap
  (** The cut protocol against a bare epoch manager (shared-clock
      composition outside this module). *)

  val snapshot_group : 'v t array -> snap
  (** One cut across stores sharing an epoch (single pin + tick + wait).
      @raise Invalid_argument when they do not share one. *)

  val release : snap -> unit
  (** Unpin (idempotent). Prune/vacuum horizons pass the cut after this. *)

  val snap_get : 'v t -> snap -> ctx -> K.t -> 'v option
  (** Point read at the cut. *)

  val snap_fold_range :
    'v t ->
    snap ->
    ctx ->
    lo:K.t ->
    hi:K.t ->
    init:'a ->
    ('a -> K.t -> 'v -> 'a) ->
    'a
  (** Consistent fold at the cut. *)

  val snap_range : 'v t -> snap -> ctx -> lo:K.t -> hi:K.t -> (K.t * 'v) list

  val vacuum : 'v t -> ctx -> int
  (** Prune cold version tails; physically remove pairs dead below every
      pin (seal -> take -> retire). Returns pairs removed. *)

  val reclaim : 'v t -> int
  (** Release record slots and tree pages whose grace period passed. *)

  (** {2 Durable mode} *)

  val create_durable :
    ?order:int ->
    ?enqueue_on_delete:bool ->
    ?epoch:Epoch.t ->
    ?size:('v -> int) ->
    ?group_bits:int ->
    ?page_ints:int ->
    enc:('v -> int) ->
    dec:(int -> 'v) ->
    S.t ->
    'v t
  (** MVCC over an empty durable store: tree and version heap share it,
      {!commit} makes both durable in one batch. [enc]/[dec] map payloads
      into the vrec int stream; [page_ints] (default 480) bounds a vrec
      page's stream slice — derive it from the backend's page size. *)

  val open_durable :
    ?enqueue_on_delete:bool ->
    ?epoch:Epoch.t ->
    ?size:('v -> int) ->
    ?group_bits:int ->
    ?page_ints:int ->
    enc:('v -> int) ->
    dec:(int -> 'v) ->
    S.t ->
    'v t
  (** Reopen after close or crash recovery: restores every chain exactly
      as persisted, restarts the clock above all persisted stamps,
      re-prunes at the persisted horizon (pruned versions never
      resurrect past a checkpoint) and heals the bounded crash windows
      (dangling pairs, sealed-not-taken pairs, orphaned slots). A store
      with no MVCC extension — a plain unversioned tree — is migrated in
      place, each payload becoming a one-version chain. *)

  val commit : 'v t -> unit
  (** Durable group commit of completed operations; in durable mode also
      serializes the dirty version-chain groups into the same batch.
      Falls back to {!T.commit} on non-durable stores. *)

  val flush : 'v t -> unit
  (** Quiescent full sync (checkpoint path). *)

  val durable : 'v t -> bool

  val bulk_add : ?fill:float -> 'v t -> (K.t * 'v) list -> bool
  (** Quiescent preload into an empty tree: one-version chains packed
      through the tree's bulk builder. [false] (nothing allocated
      durably) when the tree is not empty. *)

  val persisted_versions : 'v t -> int
  (** Version records persisted at the last commit (0 when volatile). *)

  val persisted_pages : 'v t -> int
  (** vrec pages currently allocated (0 when volatile). *)

  val gc_pending : 'v t -> int
  val live_versions : 'v t -> int
  val pruned_versions : 'v t -> int
  val bytes_stored : 'v t -> int
  val min_pinned : 'v t -> int

  val io_stats : 'v t -> Repro_storage.Stats.io
  (** The MVCC gauges ([epoch_min_pinned], [snap_pins], [mvcc_versions],
      [mvcc_pruned]) as a {!Repro_storage.Stats.io} record with every
      other field zero — made to be {!Repro_storage.Stats.io_merge}d
      into a backing store's line. *)
end

module Make (K : Key.S) : module type of Make_on_store (K) (Store.For_key (K))
