(** Queue-driven compression (§5.4): compactor workers pop under-half-full
    nodes (enqueued by deletions), locate and lock the parent, validate
    the (pointer, high value) pair, lock the node and one neighbour, and
    merge or redistribute — implementing all of the paper's cases
    (discard-if-high-changed, requeue-on-pending-insertion, the
    left-neighbour fallback, single-pointer parents, root collapses and
    whole-level-deleted detection). *)

open Repro_storage

module Make_on_store (K : Key.S) (S : Page_store.S with type key = K.t) : sig
  type step =
    | Empty  (** the queue was empty *)
    | Compressed  (** merged or redistributed a pair *)
    | Collapsed  (** reduced the tree height *)
    | Requeued
    | Discarded  (** stale entry dropped *)

  val step : ?queue:K.t Cqueue.t -> (K.t, S.t) Handle.t -> Handle.ctx -> step
  (** Pop and process one entry from [queue] (default: the tree's shared
      queue — §5.4 arrangement (2)). *)

  val compact_node :
    ?max_steps:int ->
    (K.t, S.t) Handle.t ->
    Handle.ctx ->
    ptr:Node.ptr ->
    level:int ->
    high:K.t Bound.t ->
    stack:Node.ptr list ->
    int
  (** §5.4 arrangement (3): a compression process with its own private
      queue, seeded with one node; compresses it and every consequence
      until the private queue drains. Returns merges+redistributions. *)

  val run_until_empty :
    ?max_steps:int -> (K.t, S.t) Handle.t -> Handle.ctx -> [ `Drained | `Step_limit ]
  (** Drain the shared queue (retrying requeued entries). *)

  val run_worker : (K.t, S.t) Handle.t -> Handle.ctx -> stop:bool Atomic.t -> unit
  (** Background worker loop: process entries until [stop], backing off
      while the queue is empty. Spawn any number of these (Theorem 2). *)
end

module Make (K : Key.S) : module type of Make_on_store (K) (Store.For_key (K))
