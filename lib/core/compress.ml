(** The scanning compression process (§5.1–5.2, Fig 7).

    [compress_level t ctx ~level:i] walks level [i+1] left to right via
    links; under each parent F it examines {e disjoint} pairs of adjacent
    children (A, B = A.link) and rearranges any pair containing a sparse
    node. Three nodes are locked simultaneously (F, then A, then B); each
    is unlocked immediately after it is rewritten.

    When B's pointer is not in F:
    - if B belongs in F (B.high <= F.high) and the pair needs rearranging,
      the process waits for the pending insertion of B's pair to land
      (bounded backoff here; the paper notes unbounded waiting is possible
      but "the chances of that happening are minuscule");
    - if B belongs in F but no rearranging is needed, move on within F;
    - if B belongs beyond F, move to F's right neighbour.

    A full pass ({!compress_pass}) applies this to every level bottom-up
    and then tries to collapse the root. Emptying a tree takes O(log2 n)
    passes (§5.1) — experiment E7 measures exactly that. *)

open Repro_storage

module Make_on_store (K : Key.S) (S : Page_store.S with type key = K.t) = struct
  module N = Node.Make (K)
  module A = Access.Make_on_store (K) (S)
  module R = Restructure.Make_on_store (K) (S)
  open Handle

  let bcompare = N.bcompare

  (* Loop cursor within the current parent: which child slot to examine
     next, expressed as "relative to this child pointer" so it survives
     concurrent pair insertions into F. *)
  type cursor =
    | First  (** start at F's leftmost pointer *)
    | After of Node.ptr  (** next pointer following this one *)
    | At of Node.ptr  (** retry this very pointer (the wait case) *)

  let max_wait_stages = 12

  (** One pass over level [level] (children), driving from level+1
      (parents). Returns the number of merges + redistributions made.

      [phase] (default 0) staggers the disjoint pairing: phase 1 starts at
      each parent's second pointer, so the children left unpaired by one
      phase are paired by the other. This is an extension beyond Fig 7 —
      the paper accepts that "if F has an odd number of children, then the
      last one will not be compressed"; alternating phases removes that
      blind spot across passes while changing nothing else. *)
  let compress_level ?(phase = 0) (t : (K.t, S.t) Handle.t) (ctx : ctx) ~level =
    let changes = ref 0 in
    let prime = Prime_block.read t.prime in
    match Prime_block.leftmost_at prime ~level:(level + 1) with
    | None -> 0
    | Some start ->
        let current = ref (Some start) in
        let cursor = ref First in
        let backoff = Repro_util.Backoff.create () in
        let advance_parent f =
          current := f.Node.link;
          cursor := First
        in
        while !current <> None do
          let fptr = match !current with Some p -> p | None -> assert false in
          A.lock t ctx fptr;
          let f = S.get t.store fptr in
          (match f.Node.state with
          | Node.Deleted fwd ->
              (* Another compression process (queue-driven, or a root
                 collapse) removed F; continue from its forwarding target
                 if it is still at our level, else stop the scan. *)
              A.unlock t ctx fptr;
              let next =
                if fwd = Node.nil then None
                else
                  match (try Some (S.get t.store fwd) with Page_store.Freed_page _ -> None) with
                  | Some n when n.Node.level = level + 1 -> Some fwd
                  | Some _ | None -> None
              in
              current := next;
              cursor := First
          | Node.Live ->
              let slot_of ptr = N.child_slot f ptr in
              let idx =
                match !cursor with
                | First ->
                    if phase land 1 = 1 && Array.length f.Node.ptrs > 2 then Some 1
                    else Some 0
                | At p -> ( match slot_of p with Some j -> Some j | None -> Some 0)
                | After p -> (
                    match slot_of p with
                    | Some j when j + 1 < Array.length f.Node.ptrs -> Some (j + 1)
                    | Some _ -> None (* rightmost pointer processed: next parent *)
                    | None -> Some 0 (* F changed under us: rescan from the left *))
              in
              (match idx with
              | None ->
                  A.unlock t ctx fptr;
                  advance_parent f
              | Some j ->
                  let one_ptr = f.Node.ptrs.(j) in
                  A.lock t ctx one_ptr;
                  let a = S.get t.store one_ptr in
                  if Node.is_deleted a then begin
                    (* Cannot normally happen while we hold F (pair removal
                       needs F's lock); defensively skip this slot. *)
                    A.unlock t ctx one_ptr;
                    A.unlock t ctx fptr;
                    cursor := After one_ptr
                  end
                  else begin
                    match a.Node.link with
                    | None ->
                        (* A is the rightmost node of the level: done. *)
                        A.unlock t ctx one_ptr;
                        A.unlock t ctx fptr;
                        current := None
                    | Some two_ptr -> (
                        match slot_of two_ptr with
                        | Some right_slot ->
                            A.lock t ctx two_ptr;
                            let b = S.get t.store two_ptr in
                            let outcome =
                              R.rearrange t ctx ~fptr ~f ~right_slot ~one_ptr ~a ~two_ptr
                                ~b ~enqueue_children:false ~stack:[] ()
                            in
                            Repro_util.Backoff.reset backoff;
                            (match outcome with
                            | R.Merged ->
                                incr changes;
                                cursor := After one_ptr
                            | R.Redistributed ->
                                incr changes;
                                cursor := After two_ptr
                            | R.Untouched -> cursor := After two_ptr)
                        | None ->
                            (* B's pair is not (yet) in F. *)
                            let b = S.get t.store two_ptr in
                            let needs_rearranging =
                              Node.is_sparse ~order:t.order a
                              || Node.is_sparse ~order:t.order b
                            in
                            let belongs_in_f = bcompare b.Node.high f.Node.high <= 0 in
                            A.unlock t ctx one_ptr;
                            A.unlock t ctx fptr;
                            if belongs_in_f then
                              if needs_rearranging then
                                if Repro_util.Backoff.stage backoff < max_wait_stages
                                then begin
                                  (* wait for the pending insertion, retry *)
                                  ctx.stats.Stats.waits <- ctx.stats.Stats.waits + 1;
                                  Repro_util.Backoff.once backoff;
                                  cursor := At one_ptr
                                end
                                else begin
                                  (* give up on this pair for this pass *)
                                  Repro_util.Backoff.reset backoff;
                                  cursor := After one_ptr
                                end
                              else cursor := After one_ptr
                            else advance_parent f)
                  end))
        done;
        !changes

  (** One full compression pass: every level bottom-up, then a root
      collapse attempt. Returns the number of structural changes. *)
  let compress_pass ?(phase = 0) (t : (K.t, S.t) Handle.t) (ctx : ctx) =
    Epoch.with_pin t.epoch ~slot:ctx.slot (fun () ->
        let changes = ref 0 in
        let level = ref 0 in
        let continue_ = ref true in
        while !continue_ do
          let prime = Prime_block.read t.prime in
          if !level + 1 >= prime.Prime_block.levels then continue_ := false
          else begin
            changes := !changes + compress_level ~phase t ctx ~level:!level;
            incr level
          end
        done;
        while R.try_collapse_root t ctx do
          incr changes
        done;
        !changes)

  (** Run passes until none makes a change; returns the number of passes
      that did change something (E7's metric). *)
  let compress_to_fixpoint ?(max_passes = 1000) (t : (K.t, S.t) Handle.t) (ctx : ctx) =
    (* Alternate pairing phases so that, at the fixpoint, every adjacent
       sibling pair has been examined (see [compress_level]'s [phase]).
       Stop after a changeless pass in EACH phase. *)
    let rec go total changed quiet =
      if total >= max_passes || quiet >= 2 then changed
      else if compress_pass ~phase:(total land 1) t ctx = 0 then
        go (total + 1) changed (quiet + 1)
      else go (total + 1) (changed + 1) 0
    in
    go 0 0 0
end

module Make (K : Key.S) = Make_on_store (K) (Store.For_key (K))
