(** Leaf-level combining for hot keys (flat-combining / elimination
    array, after the Elimination (a,b)-trees line of work).

    A hot key serialises every writer on one leaf lock. Instead of all N
    contenders queueing on that lock, each {e publishes} its operation in
    a small slot array indexed by a hash of the key; whoever wins the
    slot's combiner lock drains the publication list, merges same-key
    operations, applies at most two physical tree operations per key, and
    distributes an outcome to every publisher.

    Soundness: every operation drained together is still in flight (its
    caller is spinning in {!mutate}), so their invocation–response
    windows all overlap and {e any} serial order over them is a valid
    linearization. The installer picks: all deletes, then all inserts.
    Under the slot lock that order fully determines each outcome from at
    most two physical calls —

    - first delete runs physically; the other deletes of that key are
      concurrent with it and linearize immediately after, so they return
      [Deleted false];
    - first insert runs physically; the others linearize immediately
      after it and return [Inserted `Duplicate]. (When a delete of the
      same key ran first, the physical insert necessarily returns [`Ok].)

    Reads never enter the array — they stay lock-free in the tree. *)

type op = Insert of int | Delete

type outcome = Inserted of [ `Ok | `Duplicate ] | Deleted of bool

type req = {
  key : int;
  op : op;
  mutable outcome : outcome;
      (** Written by the installer before the [state] release below;
          plain field, published by the [Atomic.set] on [state]. *)
  state : int Atomic.t;  (** 0 = pending, 1 = done. *)
}

type slot = {
  pubs : req list Atomic.t;  (** Treiber-style publication list. *)
  lock : Mutex.t;  (** Combiner election: [try_lock] winner installs. *)
}

type t = {
  slots : slot array;
  registered : int Atomic.t;
  installs : int Atomic.t;
  combined : int Atomic.t;
  applied : int Atomic.t;
}

type counters = {
  c_registered : int;
  c_installs : int;
  c_combined : int;
  c_applied : int;
}

let create ?(slots = 64) () : t =
  if slots < 1 then invalid_arg "Combine.create: slots must be >= 1";
  {
    slots =
      Array.init slots (fun _ ->
          { pubs = Atomic.make []; lock = Mutex.create () });
    registered = Atomic.make 0;
    installs = Atomic.make 0;
    combined = Atomic.make 0;
    applied = Atomic.make 0;
  }

let counters (t : t) : counters =
  {
    c_registered = Atomic.get t.registered;
    c_installs = Atomic.get t.installs;
    c_combined = Atomic.get t.combined;
    c_applied = Atomic.get t.applied;
  }

let slot_of (t : t) key =
  t.slots.(Repro_storage.Shard_router.shard_of ~shards:(Array.length t.slots) key)

let rec push slot req =
  let old = Atomic.get slot.pubs in
  if not (Atomic.compare_and_set slot.pubs old (req :: old)) then push slot req

let finish (t : t) ~derived (r : req) outcome =
  if derived then Atomic.incr t.combined;
  r.outcome <- outcome;
  Atomic.set r.state 1 (* release: publishes [outcome] to the spinner *)

(* Apply one key's drained requests: at most one physical delete and one
   physical insert; everything else gets a derived outcome (see the
   linearization argument in the header comment). *)
let apply_group (t : t) ~insert ~delete key (reqs : req list) =
  let deletes, inserts =
    List.partition (fun r -> match r.op with Delete -> true | Insert _ -> false) reqs
  in
  (match deletes with
  | [] -> ()
  | first :: rest ->
      Atomic.incr t.applied;
      finish t ~derived:false first (Deleted (delete key));
      List.iter (fun r -> finish t ~derived:true r (Deleted false)) rest);
  match inserts with
  | [] -> ()
  | first :: rest ->
      let value = match first.op with Insert v -> v | Delete -> assert false in
      Atomic.incr t.applied;
      finish t ~derived:false first (Inserted (insert key value));
      List.iter (fun r -> finish t ~derived:true r (Inserted `Duplicate)) rest

let drain_and_apply (t : t) slot ~insert ~delete =
  match Atomic.exchange slot.pubs [] with
  | [] -> ()
  | reqs ->
      Atomic.incr t.installs;
      (* Group per key, preserving nothing — all reqs are concurrent. *)
      let groups : (int, req list) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (fun r ->
          let prev = try Hashtbl.find groups r.key with Not_found -> [] in
          Hashtbl.replace groups r.key (r :: prev))
        reqs;
      Hashtbl.iter (apply_group t ~insert ~delete) groups

let mutate (t : t) ~key ~op
    ~(insert : int -> int -> [ `Ok | `Duplicate ]) ~(delete : int -> bool) :
    outcome =
  let slot = slot_of t key in
  let req = { key; op; outcome = Deleted false; state = Atomic.make 0 } in
  Atomic.incr t.registered;
  push slot req;
  let backoff = Repro_util.Backoff.create () in
  let rec loop () =
    if Atomic.get req.state = 1 then req.outcome
    else if Mutex.try_lock slot.lock then begin
      (* We are the combiner: our own request is in the list (or was
         just finished by the previous combiner). *)
      drain_and_apply t slot ~insert ~delete;
      Mutex.unlock slot.lock;
      if Atomic.get req.state = 1 then req.outcome
      else loop () (* raced: someone drained us but hadn't finished *)
    end
    else begin
      Repro_util.Backoff.once backoff;
      loop ()
    end
  in
  loop ()
