(** Structural invariant checker for quiescent trees: verifies the
    "validity of the search structure" Theorem 1 rests on (each non-leaf
    level equals the high-value/link sequence of the level below, Fig 2)
    and reports occupancy statistics. *)

open Repro_storage

type level_stats = {
  level : int;
  nodes : int;
  keys : int;
  min_fill : float;
  avg_fill : float;  (** keys / capacity averaged over the level's nodes *)
}

type report = {
  height : int;
  total_keys : int;
  total_nodes : int;  (** live nodes reachable from the root *)
  levels : level_stats list;
  encoded_bytes : int;  (** page-format size of all reachable nodes *)
  errors : string list;
}

val ok : report -> bool

module Make_on_store (K : Key.S) (S : Page_store.S with type key = K.t) : sig
  val check : (K.t, S.t) Handle.t -> report
  (** Full structural check; call only with no operation in flight. *)

  val leak_check : (K.t, S.t) Handle.t -> Node.ptr list
  (** Quiescent page-leak check: live store pages that are neither
      reachable from the root nor tombstones awaiting reclamation.
      Empty after compaction + reclaim when §5.3 holds. *)

  val leak_check_online : ?passes:int -> (K.t, S.t) Handle.t -> Node.ptr list
  (** {!leak_check} with writers live: intersects [passes] (default 3)
      independent reachability walks, filtering pages that are only
      transiently unreachable (mid-split publish, mid-retire). A
      genuine leak survives every pass and is reported. *)

  val check_occupancy : ?strict:bool -> (K.t, S.t) Handle.t -> string list
  (** {!check}'s errors plus — when [strict] — one error per non-root node
      holding fewer than k pairs (the §5.1 postcondition, modulo the
      odd-child caveat of the scanning process). *)
end

module Make (K : Key.S) : module type of Make_on_store (K) (Store.For_key (K))
