(** Queue-driven compression processes (§5.4).

    A deletion that leaves a node under half full enqueues it (with its
    level, high value and descent stack). Any number of compactor workers
    pop entries — higher levels first, per the paper's footnote 17 — and
    compress them: locate the parent F (same search as an insertion's
    parent search), validate that F still holds the pair (ptr, high),
    lock F + the node + one neighbour, and merge or redistribute.

    All of the paper's cases are implemented: discard when the node's high
    value changed (another process is responsible, Theorem 2's argument);
    requeue when the neighbour's pair has not yet been inserted into F;
    the left-neighbour fallback when the node is F's rightmost child;
    requeue-behind-the-parent when F has a single pointer; and the root
    special cases (including multi-level collapse and whole-level-deleted
    detection, via {!Access}'s level checks). *)

open Repro_storage

module Make_on_store (K : Key.S) (S : Page_store.S with type key = K.t) = struct
  module N = Node.Make (K)
  module A = Access.Make_on_store (K) (S)
  module R = Restructure.Make_on_store (K) (S)
  open Handle

  let bcompare = N.bcompare

  type step =
    | Empty  (** queue was empty *)
    | Compressed  (** merged or redistributed a pair *)
    | Collapsed  (** reduced the tree height *)
    | Requeued
    | Discarded  (** stale entry dropped *)

  let requeue (ctx : ctx) queue ~update (e : K.t Cqueue.entry) ~high =
    Cqueue.push queue ~update ~ptr:e.Cqueue.ptr ~level:e.Cqueue.level ~high
      ~stack:e.Cqueue.stack ~stamp:e.Cqueue.stamp;
    ctx.stats.Stats.requeued <- ctx.stats.Stats.requeued + 1

  let discard (ctx : ctx) =
    ctx.stats.Stats.discarded <- ctx.stats.Stats.discarded + 1;
    Discarded

  (* Process entry [e]: the §5.4 state machine. Called with the epoch
     pinned. *)
  let rec process (t : (K.t, S.t) Handle.t) (ctx : ctx) ~queue (e : K.t Cqueue.entry) : step =
    let ap = e.Cqueue.ptr in
    (* Quick unlocked peek: the node may be gone, reused, or full again. *)
    match (try `Node (S.get t.store ap) with Page_store.Freed_page _ -> `Freed) with
    | `Freed -> discard ctx
    | `Node a0 ->
        if
          Node.is_deleted a0
          || a0.Node.level <> e.Cqueue.level
          || not (Node.is_sparse ~order:t.order a0)
        then discard ctx
        else if a0.Node.is_root then discard ctx
        else begin
          (* Locate and lock the parent: the node at level+1 that should
             contain the high value we have for A. *)
          match
            (try
               `F
                 (A.acquire t ctx e.Cqueue.high ~level:(e.Cqueue.level + 1)
                    ~on_missing:A.Give_up ?start:None ~stack:e.Cqueue.stack ())
             with A.Level_missing -> `Gone)
          with
          | `Gone ->
              (* The whole level above was deleted: A's level became the
                 root after A was enqueued — nothing to do. *)
              discard ctx
          | `F (fptr, f, _stack) -> with_parent t ctx ~queue e fptr f
        end

  and with_parent t (ctx : ctx) ~queue (e : K.t Cqueue.entry) fptr (f : K.t Node.t) :
      step =
    let ap = e.Cqueue.ptr in
    match N.child_slot f ap with
    | Some j when bcompare (N.slot_high f j) e.Cqueue.high = 0 ->
        with_pair t ctx ~queue e fptr f j
    | Some _ | None -> (
        (* F does not have the pair (p, v). *)
        A.unlock t ctx fptr;
        match (try `Node (S.get t.store ap) with Page_store.Freed_page _ -> `Freed) with
        | `Freed -> discard ctx
        | `Node a ->
            if Node.is_deleted a then discard ctx
            else if bcompare a.Node.high e.Cqueue.high <> 0 then
              (* A was split or compressed since: whoever did it is
                 responsible for any further compression of A. *)
              discard ctx
            else begin
              (* The pointer to A is pending insertion into the parent
                 level (A is a fresh right-half of a split? — no: A's own
                 pair is missing, e.g. its left sibling split/merged
                 rearranged F). Try again later. *)
              requeue ctx queue ~update:false e ~high:e.Cqueue.high;
              Requeued
            end)

  and with_pair t (ctx : ctx) ~queue (e : K.t Cqueue.entry) fptr (f : K.t Node.t) j :
      step =
    let ap = e.Cqueue.ptr in
    let nchildren = Array.length f.Node.ptrs in
    if nchildren = 1 then begin
      if f.Node.is_root then begin
        A.unlock t ctx fptr;
        (* Root with a single child: height reduction. *)
        if R.try_collapse_root t ctx then Collapsed
        else begin
          requeue ctx queue ~update:false e ~high:e.Cqueue.high;
          Requeued
        end
      end
      else begin
        (* F has only A: F itself must be compressed first (it is sparse,
           hence queued — and popped before A thanks to level priority),
           or pointers are pending insertion into F. *)
        A.unlock t ctx fptr;
        requeue ctx queue ~update:false e ~high:e.Cqueue.high;
        Requeued
      end
    end
    else if f.Node.is_root && nchildren = 2 && R.collapse_two_children t ctx ~fptr ~f then
      Collapsed
    else if j < nchildren - 1 then begin
      (* Case (1): right neighbour. *)
      A.lock t ctx ap;
      let a = S.get t.store ap in
      if Node.is_deleted a then begin
        A.unlock t ctx ap;
        A.unlock t ctx fptr;
        discard ctx
      end
      else begin
        match a.Node.link with
        | None ->
            A.unlock t ctx ap;
            A.unlock t ctx fptr;
            discard ctx
        | Some two_ptr -> (
            match N.child_slot f two_ptr with
            | Some right_slot ->
                A.lock t ctx two_ptr;
                let b = S.get t.store two_ptr in
                let outcome =
                  R.rearrange t ctx ~queue ~fptr ~f ~right_slot ~one_ptr:ap ~a ~two_ptr
                    ~b ~enqueue_children:true ~stack:e.Cqueue.stack ()
                in
                if outcome = R.Untouched then discard ctx else Compressed
            | None ->
                (* A's right sibling's pair is not yet in F (pending
                   insertion). Try the left neighbour if there is one;
                   otherwise requeue A — with updated info, since we hold
                   A's lock. *)
                if j > 0 then try_left t ctx ~queue e fptr f j ~a_locked:true
                else begin
                  requeue ctx queue ~update:true e ~high:a.Node.high;
                  A.unlock t ctx ap;
                  A.unlock t ctx fptr;
                  Requeued
                end)
      end
    end
    else
      (* Case (2): A is F's rightmost child — left neighbour. *)
      try_left t ctx ~queue e fptr f j ~a_locked:false

  and try_left t (ctx : ctx) ~queue (e : K.t Cqueue.entry) fptr (f : K.t Node.t) j
      ~a_locked : step =
    let ap = e.Cqueue.ptr in
    let bl = f.Node.ptrs.(j - 1) in
    A.lock t ctx bl;
    let bn = S.get t.store bl in
    if (not (Node.is_deleted bn)) && bn.Node.link = Some ap then begin
      if not a_locked then A.lock t ctx ap;
      let a = S.get t.store ap in
      if Node.is_deleted a then begin
        A.unlock t ctx ap;
        A.unlock t ctx bl;
        A.unlock t ctx fptr;
        discard ctx
      end
      else begin
        let outcome =
          R.rearrange t ctx ~queue ~fptr ~f ~right_slot:j ~one_ptr:bl ~a:bn ~two_ptr:ap
            ~b:a ~enqueue_children:true ~stack:e.Cqueue.stack ()
        in
        if outcome = R.Untouched then discard ctx else Compressed
      end
    end
    else begin
      (* The left sibling's link does not point to A (a split in between):
         requeue. If we hold A's lock, refresh the queued info. *)
      A.unlock t ctx bl;
      if a_locked then begin
        let a = S.get t.store ap in
        requeue ctx queue ~update:true e ~high:a.Node.high;
        A.unlock t ctx ap
      end
      else requeue ctx queue ~update:false e ~high:e.Cqueue.high;
      A.unlock t ctx fptr;
      Requeued
    end

  (** Pop and process one entry from [queue] (default: the tree's shared
      queue, §5.4 arrangement (2)). *)
  let step ?queue (t : (K.t, S.t) Handle.t) (ctx : ctx) : step =
    let queue = match queue with Some q -> q | None -> t.queue in
    match Cqueue.pop queue with
    | None -> Empty
    | Some e -> Epoch.with_pin t.epoch ~slot:ctx.slot (fun () -> process t ctx ~queue e)

  (** §5.4 arrangement (3): a compression process with its own private
      queue, initiated for one node (typically by the deletion that made
      it sparse). Seeds a fresh queue with the node, then compresses it
      and every consequence (sparse merge survivors, sparse parents) until
      the private queue is empty. Runs concurrently with everything else;
      [max_steps] bounds livelock against a hostile interleaving. Returns
      the number of merges+redistributions performed. *)
  let compact_node ?(max_steps = 100_000) (t : (K.t, S.t) Handle.t) (ctx : ctx) ~ptr ~level
      ~high ~stack =
    let queue : K.t Cqueue.t = Cqueue.create () in
    Cqueue.push queue ~update:true ~ptr ~level ~high ~stack ~stamp:0;
    let changes = ref 0 in
    let steps = ref 0 in
    let continue_ = ref true in
    while !continue_ && !steps < max_steps do
      incr steps;
      match step ~queue t ctx with
      | Empty -> continue_ := false
      | Compressed | Collapsed -> incr changes
      | Requeued | Discarded -> ()
    done;
    !changes

  (** Drain the queue (e.g. after a quiescent delete phase). Requeued
      entries are retried; [max_steps] bounds pathological schedules. *)
  let run_until_empty ?(max_steps = 10_000_000) (t : (K.t, S.t) Handle.t) (ctx : ctx) =
    let rec go n =
      if n >= max_steps then `Step_limit
      else
        match step t ctx with
        | Empty -> `Drained
        | Compressed | Collapsed | Requeued | Discarded -> go (n + 1)
    in
    go 0

  (** Background worker: process entries until [stop] is set, backing off
      while the queue is empty. *)
  let run_worker (t : (K.t, S.t) Handle.t) (ctx : ctx) ~(stop : bool Atomic.t) =
    let backoff = Repro_util.Backoff.create () in
    while not (Atomic.get stop) do
      match step t ctx with
      | Empty ->
          ctx.stats.Stats.waits <- ctx.stats.Stats.waits + 1;
          Repro_util.Backoff.once backoff
      | Compressed | Collapsed | Requeued | Discarded -> Repro_util.Backoff.reset backoff
    done
end

module Make (K : Key.S) = Make_on_store (K) (Store.For_key (K))
