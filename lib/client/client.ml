module P = Repro_server.Protocol

exception Remote_error of string

type t = {
  fd : Unix.file_descr;
  mutable seq : int;
  out : Buffer.t;
  mutable buf : Bytes.t;
  mutable lo : int;
  mutable hi : int;
  mutable closed : bool;
}

let connect addr =
  let fd =
    Unix.socket ~cloexec:true (Unix.domain_of_sockaddr addr) SOCK_STREAM 0
  in
  (try Unix.connect fd addr
   with e ->
     Unix.close fd;
     raise e);
  {
    fd;
    seq = 0;
    out = Buffer.create 4096;
    buf = Bytes.create 4096;
    lo = 0;
    hi = 0;
    closed = false;
  }

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let flush t =
  let n = Buffer.length t.out in
  let bytes = Buffer.to_bytes t.out in
  Buffer.clear t.out;
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write t.fd bytes !off (n - !off)
  done

(* Read until one complete response frame is buffered; return it. *)
let read_response t =
  let rec go () =
    match P.decode_response t.buf ~pos:t.lo ~len:(t.hi - t.lo) with
    | Frame { seq; body; consumed } ->
        t.lo <- t.lo + consumed;
        (seq, body)
    | Need_more ->
        if t.lo > 0 then begin
          Bytes.blit t.buf t.lo t.buf 0 (t.hi - t.lo);
          t.hi <- t.hi - t.lo;
          t.lo <- 0
        end;
        let cap = Bytes.length t.buf in
        if cap - t.hi < 512 then begin
          let b = Bytes.create (cap * 2) in
          Bytes.blit t.buf 0 b 0 t.hi;
          t.buf <- b
        end;
        let n =
          Unix.read t.fd t.buf t.hi (Bytes.length t.buf - t.hi)
        in
        if n = 0 then raise End_of_file;
        t.hi <- t.hi + n;
        go ()
  in
  go ()

let pipeline t reqs =
  let seqs =
    List.map
      (fun r ->
        let s = t.seq in
        t.seq <- (t.seq + 1) land 0xffffffff;
        P.encode_request t.out ~seq:s r;
        s)
      reqs
  in
  flush t;
  List.map
    (fun expect ->
      let seq, resp = read_response t in
      if seq <> expect then
        raise
          (P.Bad_frame
             (Printf.sprintf "response out of order: seq %d, expected %d" seq
                expect));
      resp)
    seqs

let one t req =
  match pipeline t [ req ] with
  | [ P.Error msg ] -> raise (Remote_error msg)
  | [ r ] -> r
  | _ -> assert false

let insert t ~key ~value =
  match one t (P.Insert { key; value }) with
  | Inserted -> `Ok
  | Duplicate -> `Duplicate
  | r -> raise (P.Bad_frame ("unexpected reply " ^ P.response_to_string r))

let delete t ~key =
  match one t (P.Delete { key }) with
  | Deleted -> true
  | Absent -> false
  | r -> raise (P.Bad_frame ("unexpected reply " ^ P.response_to_string r))

let search t ~key =
  match one t (P.Search { key }) with
  | Found v -> Some v
  | Absent -> None
  | r -> raise (P.Bad_frame ("unexpected reply " ^ P.response_to_string r))

let range t ~lo ~hi =
  match one t (P.Range { lo; hi }) with
  | Pairs ps -> ps
  | r -> raise (P.Bad_frame ("unexpected reply " ^ P.response_to_string r))

let commit t =
  match one t P.Commit with
  | Committed -> ()
  | r -> raise (P.Bad_frame ("unexpected reply " ^ P.response_to_string r))

let stats t =
  match one t P.Stats with
  | Stats_reply s -> s
  | r -> raise (P.Bad_frame ("unexpected reply " ^ P.response_to_string r))
