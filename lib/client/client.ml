module P = Repro_server.Protocol

exception Remote_error of string

type t = {
  fd : Unix.file_descr;
  mutable seq : int;
  out : Buffer.t;
  mutable buf : Bytes.t;
  mutable lo : int;
  mutable hi : int;
  mutable closed : bool;
}

let connect addr =
  let fd =
    Unix.socket ~cloexec:true (Unix.domain_of_sockaddr addr) SOCK_STREAM 0
  in
  (try Unix.connect fd addr
   with e ->
     Unix.close fd;
     raise e);
  {
    fd;
    seq = 0;
    out = Buffer.create 4096;
    buf = Bytes.create 4096;
    lo = 0;
    hi = 0;
    closed = false;
  }

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let flush t =
  let n = Buffer.length t.out in
  let bytes = Buffer.to_bytes t.out in
  Buffer.clear t.out;
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write t.fd bytes !off (n - !off)
  done

(* Read until one complete response frame is buffered; return it. *)
let read_response t =
  let rec go () =
    match P.decode_response t.buf ~pos:t.lo ~len:(t.hi - t.lo) with
    | Frame { seq; body; consumed } ->
        t.lo <- t.lo + consumed;
        (seq, body)
    | Need_more ->
        if t.lo > 0 then begin
          Bytes.blit t.buf t.lo t.buf 0 (t.hi - t.lo);
          t.hi <- t.hi - t.lo;
          t.lo <- 0
        end;
        let cap = Bytes.length t.buf in
        if cap - t.hi < 512 then begin
          let b = Bytes.create (cap * 2) in
          Bytes.blit t.buf 0 b 0 t.hi;
          t.buf <- b
        end;
        let n =
          Unix.read t.fd t.buf t.hi (Bytes.length t.buf - t.hi)
        in
        if n = 0 then raise End_of_file;
        t.hi <- t.hi + n;
        go ()
  in
  go ()

let pipeline t reqs =
  let seqs =
    List.map
      (fun r ->
        let s = t.seq in
        t.seq <- (t.seq + 1) land 0xffffffff;
        P.encode_request t.out ~seq:s r;
        s)
      reqs
  in
  flush t;
  List.map
    (fun expect ->
      let seq, resp = read_response t in
      if seq <> expect then
        raise
          (P.Bad_frame
             (Printf.sprintf "response out of order: seq %d, expected %d" seq
                expect));
      resp)
    seqs

(* The shard a request's key routes to; [None] for keyless requests
   (Range spans shards; Commit/Stats are global). *)
let request_shard ~shards (r : P.request) =
  match r with
  | P.Insert { key; _ } | P.Delete { key } | P.Search { key } ->
      Some (Repro_storage.Shard_router.shard_of ~shards key)
  | P.Range _ | P.Commit | P.Stats -> None
  (* Subscribe names its shard explicitly — never regrouped by key;
     Snapshot is connection-session state, a barrier like Commit *)
  | P.Subscribe _ | P.Snapshot _ -> None

(* Reorder a batch so each shard's requests are contiguous (stable
   within a shard, so same-key order is preserved — same key, same
   shard), send via [pipeline], scatter the responses back to caller
   order. Keyless requests are barriers: buckets flush before them, so
   nothing moves across a Commit/Range/Stats. The grouping narrows the
   server batch's touched-shard runs, which is what lets its per-shard
   ack commit skip the shards a batch never touched. *)
let pipeline_sharded t ~shards reqs =
  if shards < 1 then invalid_arg "Client.pipeline_sharded: shards >= 1";
  let arr = Array.of_list reqs in
  let n = Array.length arr in
  let order = Array.make n 0 in
  let pos = ref 0 in
  let buckets = Array.make shards [] in
  let flush_buckets () =
    Array.iteri
      (fun s idxs ->
        List.iter
          (fun i ->
            order.(!pos) <- i;
            incr pos)
          (List.rev idxs);
        buckets.(s) <- [])
      buckets
  in
  Array.iteri
    (fun i r ->
      match request_shard ~shards r with
      | Some s -> buckets.(s) <- i :: buckets.(s)
      | None ->
          flush_buckets ();
          order.(!pos) <- i;
          incr pos)
    arr;
  flush_buckets ();
  let resps = pipeline t (List.init n (fun p -> arr.(order.(p)))) in
  let out = Array.make n (P.Error "pipeline_sharded: unfilled") in
  List.iteri (fun p resp -> out.(order.(p)) <- resp) resps;
  Array.to_list out

let one t req =
  match pipeline t [ req ] with
  | [ P.Error msg ] -> raise (Remote_error msg)
  | [ r ] -> r
  | _ -> assert false

let insert t ~key ~value =
  match one t (P.Insert { key; value }) with
  | Inserted -> `Ok
  | Duplicate -> `Duplicate
  | r -> raise (P.Bad_frame ("unexpected reply " ^ P.response_to_string r))

let delete t ~key =
  match one t (P.Delete { key }) with
  | Deleted -> true
  | Absent -> false
  | r -> raise (P.Bad_frame ("unexpected reply " ^ P.response_to_string r))

let search t ~key =
  match one t (P.Search { key }) with
  | Found v -> Some v
  | Absent -> None
  | r -> raise (P.Bad_frame ("unexpected reply " ^ P.response_to_string r))

let range t ~lo ~hi =
  match one t (P.Range { lo; hi }) with
  | Pairs ps -> ps
  | r -> raise (P.Bad_frame ("unexpected reply " ^ P.response_to_string r))

let commit t =
  match one t P.Commit with
  | Committed -> ()
  | r -> raise (P.Bad_frame ("unexpected reply " ^ P.response_to_string r))

let stats t =
  match one t P.Stats with
  | Stats_reply s -> s
  | r -> raise (P.Bad_frame ("unexpected reply " ^ P.response_to_string r))

let snapshot_open t =
  match one t (P.Snapshot { close = false }) with
  | Snap_reply { epoch } -> epoch
  | r -> raise (P.Bad_frame ("unexpected reply " ^ P.response_to_string r))

let snapshot_close t =
  match one t (P.Snapshot { close = true }) with
  | Snap_reply _ -> ()
  | r -> raise (P.Bad_frame ("unexpected reply " ^ P.response_to_string r))

let wal_fetch t ~shard ~from_lsn ~max_pages ~wait_ms =
  match one t (P.Subscribe { shard; from_lsn; max_pages; wait_ms }) with
  | Wal_chunk { next_lsn; pages; _ } -> (pages, next_lsn)
  | r -> raise (P.Bad_frame ("unexpected reply " ^ P.response_to_string r))
