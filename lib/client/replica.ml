(** The follower side of WAL-shipping replication: pull durable log
    pages from a primary over the wire ({!Client.wal_fetch}), feed them
    through {!Repro_storage.Wal.Apply} — the same scan-one-record step
    local recovery replays with — and install each promoted commit batch
    into a private {!Paged_store}. The replica serves lock-free
    search/range at its {e replay horizon} (the LSN of the last applied
    COMMIT): always a prefix of the primary's committed history, never a
    torn batch, because [Apply] only surfaces whole promoted batches.

    The tree view is a {!Sagiv.open_existing} handle over the replica's
    store, rebuilt only when a batch ships new tree metadata (a root
    split or level change); between meta changes the existing view reads
    the freshly installed page images through the store, because
    [apply_replicated] invalidates any cached copy. A small mutex
    serialises view swaps against reads — the replica's apply loop is
    single-threaded, so this is the only coordination needed.

    Promotion ({!promote}) turns the replica read-write in place: once
    the operator decides the primary is gone (and after draining
    whatever the feed still has — see the crash harness for the oracle),
    the same store and view start accepting inserts/deletes, picking up
    exactly the acked history the stream delivered. *)

module PS = Repro_baseline.Tree_intf.Paged_int
module Sg = Repro_baseline.Tree_intf.Sagiv_disk
module Wal = Repro_storage.Wal

exception Stream_error of string
(** The shipped stream failed the apply policy (LSN gap, regressed
    generation/incarnation, torn record): the feed is not a valid
    continuation and the replica must re-seed. *)

type t = {
  shard : int;
  max_pages : int;
  mu : Mutex.t;  (** view swaps vs. reads *)
  mutable store : PS.t option;  (** created on the first shipped page *)
  mutable view : Sg.t option;  (** rebuilt on meta-carrying batches *)
  mutable apply : Wal.Apply.t option;
  mutable next_lsn : int;  (** where the next pull starts *)
  mutable horizon : int;  (** LSN of the last applied COMMIT; -1 = none *)
  mutable batches : int;
  mutable promoted : bool;
}

let create ?(shard = 0) ?(max_pages = 256) () =
  {
    shard;
    max_pages;
    mu = Mutex.create ();
    store = None;
    view = None;
    apply = None;
    next_lsn = 0;
    horizon = -1;
    batches = 0;
    promoted = false;
  }

let with_mu t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let horizon t = t.horizon
let next_lsn t = t.next_lsn
let batches t = t.batches
let promoted t = t.promoted

(* Lazily build the store + scanner from the first shipped page: its
   size is the primary's log page size, which fixes the data page size
   (and therefore the whole store geometry) without any side channel. *)
let ensure_machinery t page =
  match (t.store, t.apply) with
  | Some store, Some apply -> (store, apply)
  | _ ->
      let data_page_size = Bytes.length page - Wal.header_bytes in
      if data_page_size <= 0 then
        raise (Stream_error "shipped page smaller than a record header");
      let store = PS.create_memory ~page_size:data_page_size () in
      let apply = Wal.Apply.create ~data_page_size () in
      t.store <- Some store;
      t.apply <- Some apply;
      (store, apply)

(** Feed one raw log page (exactly as shipped). Applies a whole batch
    when the page is its COMMIT. @raise Stream_error on a page that is
    not a valid continuation of the stream. *)
let feed t page =
  let store, apply = ensure_machinery t page in
  match Wal.Apply.step apply page with
  | Wal.Apply.Progress -> ()
  | Wal.Apply.Reject msg -> raise (Stream_error msg)
  | Wal.Apply.Batch b ->
      (* The whole install happens under the view mutex: a reader that
         holds it for the duration of a scan ([range] below) reads every
         leaf at one replay horizon. Installing the page images outside
         the mutex let a long scan straddle a batch — its tail leaves
         showed writes whose horizon the scan's head never saw. *)
      with_mu t (fun () ->
          PS.apply_replicated store ~images:b.Wal.Apply.b_images
            ~meta:b.Wal.Apply.b_meta;
          (match b.Wal.Apply.b_meta with
          | Some _ -> t.view <- Some (Sg.open_existing store)
          | None -> ());
          t.horizon <- b.Wal.Apply.b_lsn;
          t.batches <- t.batches + 1)

(** One pull-and-apply round over [client]. [`Applied n] — n batches
    landed; [`Caught_up] — nothing new within [wait_ms]; raises
    {!Client.Remote_error} [("stale")] when the replica has fallen out
    of the primary's retention window. *)
let poll ?(wait_ms = 500) t client =
  let before = t.batches in
  let pages, next =
    Client.wal_fetch client ~shard:t.shard ~from_lsn:t.next_lsn
      ~max_pages:t.max_pages ~wait_ms
  in
  List.iter (feed t) pages;
  t.next_lsn <- next;
  if pages = [] then `Caught_up else `Applied (t.batches - before)

let search t ctx key =
  with_mu t (fun () ->
      match t.view with None -> None | Some v -> Sg.search v ctx key)

(* Holding [mu] across the whole walk pins the scan to one replay
   horizon — batch installs ([feed]) also run under [mu], so no leaf
   read here can be newer than another. *)
let range t ctx ~lo ~hi =
  with_mu t (fun () ->
      match t.view with None -> [] | Some v -> Sg.range v ctx ~lo ~hi)

let cardinal t =
  with_mu t (fun () ->
      match t.view with None -> 0 | Some v -> Sg.cardinal v)

let height t =
  with_mu t (fun () ->
      match t.view with None -> 0 | Some v -> Sg.height v)

(** Flip the replica read-write: subsequent mutations through
    {!handle} run against the replicated store, continuing exactly from
    the applied horizon. The feed must be drained (and stopped) first —
    the caller owns that ordering; see the promotion oracle in
    [lib/harness/crash.ml]. *)
let promote t = t.promoted <- true

let not_writable () = failwith "replica: read-only (not promoted)"

(** A {!Tree_intf.handle} over the replica, servable by {!Server} like
    any other backend: search/range/stats work at the replay horizon;
    insert/delete/commit fail until {!promote}. *)
let handle t =
  {
    Repro_baseline.Tree_intf.name = "replica";
    search = (fun ctx k -> search t ctx k);
    insert =
      (fun ctx k v ->
        if not t.promoted then not_writable ()
        else
          with_mu t (fun () ->
              match t.view with
              | Some view -> Sg.insert view ctx k v
              | None -> not_writable ()));
    delete =
      (fun ctx k ->
        if not t.promoted then not_writable ()
        else
          with_mu t (fun () ->
              match t.view with
              | Some view -> Sg.delete view ctx k
              | None -> not_writable ()));
    cardinal = (fun () -> cardinal t);
    height = (fun () -> height t);
    commit =
      (fun () ->
        if t.promoted then
          with_mu t (fun () ->
              match t.view with Some view -> Sg.commit view | None -> ()));
    range = Some (fun ctx ~lo ~hi -> range t ctx ~lo ~hi);
    sharding = None;
    bulk_add = None;
    mvcc = None;
  }
