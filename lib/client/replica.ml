(** The follower side of WAL-shipping replication: pull durable log
    pages from a primary over the wire ({!Client.wal_fetch}), feed them
    through {!Repro_storage.Wal.Apply} — the same scan-one-record step
    local recovery replays with — and install each promoted commit batch
    into a private {!Paged_store}. The replica serves lock-free
    search/range at its {e replay horizon} (the LSN of the last applied
    COMMIT): always a prefix of the primary's committed history, never a
    torn batch, because [Apply] only surfaces whole promoted batches.

    The tree view is a {!Sagiv.open_existing} handle over the replica's
    store, rebuilt only when a batch ships new tree metadata (a root
    split or level change); between meta changes the existing view reads
    the freshly installed page images through the store, because
    [apply_replicated] invalidates any cached copy. A small mutex
    serialises view swaps against reads — the replica's apply loop is
    single-threaded, so this is the only coordination needed.

    Promotion ({!promote}) turns the replica read-write in place: once
    the operator decides the primary is gone (and after draining
    whatever the feed still has — see the crash harness for the oracle),
    the same store and view start accepting inserts/deletes, picking up
    exactly the acked history the stream delivered. *)

module PS = Repro_baseline.Tree_intf.Paged_int
module Sg = Repro_baseline.Tree_intf.Sagiv_disk
module Wal = Repro_storage.Wal
module Node = Repro_storage.Node
module R = Repro_storage.Record_store
module Mvcc = Repro_core.Mvcc

exception Stream_error of string
(** The shipped stream failed the apply policy (LSN gap, regressed
    generation/incarnation, torn record): the feed is not a valid
    continuation and the replica must re-seed. *)

type t = {
  shard : int;
  max_pages : int;
  mu : Mutex.t;  (** view swaps vs. reads *)
  mutable store : PS.t option;  (** created on the first shipped page *)
  mutable view : Sg.t option;  (** rebuilt on meta-carrying batches *)
  mutable apply : Wal.Apply.t option;
  mutable next_lsn : int;  (** where the next pull starts *)
  mutable horizon : int;  (** LSN of the last applied COMMIT; -1 = none *)
  mutable batches : int;
  mutable promoted : bool;
  mutable mvcc : Mvcc.meta_ext option;
      (** decoded from the last shipped metadata blob; [Some] iff the
          primary runs durable MVCC. Its [clock] is the replica's
          snapshot read horizon: every persisted version stamp is
          bounded by it, so resolving chains at [<= clock] reads the
          exact committed cut the primary persisted. *)
  mutable vrec_index : (int, Node.ptr) Hashtbl.t option;
      (** lazy group -> vrec head-page index over the replicated store;
          invalidated on every applied batch (groups can be allocated,
          released or re-chunked by any commit). *)
}

let create ?(shard = 0) ?(max_pages = 256) () =
  {
    shard;
    max_pages;
    mu = Mutex.create ();
    store = None;
    view = None;
    apply = None;
    next_lsn = 0;
    horizon = -1;
    batches = 0;
    promoted = false;
    mvcc = None;
    vrec_index = None;
  }

let with_mu t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let horizon t = t.horizon
let next_lsn t = t.next_lsn
let batches t = t.batches
let promoted t = t.promoted

(* Lazily build the store + scanner from the first shipped page: its
   size is the primary's log page size, which fixes the data page size
   (and therefore the whole store geometry) without any side channel. *)
let ensure_machinery t page =
  match (t.store, t.apply) with
  | Some store, Some apply -> (store, apply)
  | _ ->
      let data_page_size = Bytes.length page - Wal.header_bytes in
      if data_page_size <= 0 then
        raise (Stream_error "shipped page smaller than a record header");
      let store = PS.create_memory ~page_size:data_page_size () in
      let apply = Wal.Apply.create ~data_page_size () in
      t.store <- Some store;
      t.apply <- Some apply;
      (store, apply)

(** Feed one raw log page (exactly as shipped). Applies a whole batch
    when the page is its COMMIT. @raise Stream_error on a page that is
    not a valid continuation of the stream. *)
let feed t page =
  let store, apply = ensure_machinery t page in
  match Wal.Apply.step apply page with
  | Wal.Apply.Progress -> ()
  | Wal.Apply.Reject msg -> raise (Stream_error msg)
  | Wal.Apply.Batch b ->
      (* The whole install happens under the view mutex: a reader that
         holds it for the duration of a scan ([range] below) reads every
         leaf at one replay horizon. Installing the page images outside
         the mutex let a long scan straddle a batch — its tail leaves
         showed writes whose horizon the scan's head never saw. *)
      with_mu t (fun () ->
          PS.apply_replicated store ~images:b.Wal.Apply.b_images
            ~meta:b.Wal.Apply.b_meta;
          (match b.Wal.Apply.b_meta with
          | Some m ->
              t.view <- Some (Sg.open_existing store);
              (* a durable-MVCC primary appends its extension (group
                 geometry + clock + prune horizon) to every shipped
                 metadata blob; a plain primary ships none and the
                 replica reads leaf payloads directly *)
              t.mvcc <- Mvcc.decode_meta_ext m
          | None -> ());
          (* vrec pages ride the same image stream as tree pages — any
             batch may have rewritten, grown or released chain groups *)
          t.vrec_index <- None;
          t.horizon <- b.Wal.Apply.b_lsn;
          t.batches <- t.batches + 1)

(** One pull-and-apply round over [client]. [`Applied n] — n batches
    landed; [`Caught_up] — nothing new within [wait_ms]; raises
    {!Client.Remote_error} [("stale")] when the replica has fallen out
    of the primary's retention window. *)
let poll ?(wait_ms = 500) t client =
  let before = t.batches in
  let pages, next =
    Client.wal_fetch client ~shard:t.shard ~from_lsn:t.next_lsn
      ~max_pages:t.max_pages ~wait_ms
  in
  List.iter (feed t) pages;
  t.next_lsn <- next;
  if pages = [] then `Caught_up else `Applied (t.batches - before)

(* ---- durable-MVCC chain resolution (all under [mu]) ----

   On a durable-MVCC primary a leaf payload is not the value: it is a
   record-slot pointer whose version chain persists in vrec pseudo-pages
   ({!Node.vrec_level}) shipped through the very same image stream as
   tree pages. The replica resolves [rptr -> group head page -> chain ->
   newest version stamped <= persisted clock] — the same cut the primary
   committed, so a scan at the replay horizon is a true snapshot: no
   half-applied chain can be observed because whole batches install
   under [mu]. *)

let vrec_heads t store =
  match t.vrec_index with
  | Some h -> h
  | None ->
      let h = Hashtbl.create 64 in
      PS.iter store (fun p n ->
          if n.Node.level = Node.vrec_level && n.Node.is_root then
            (* the head chunk starts with the group id *)
            match n.Node.ptrs with
            | [||] -> ()
            | ptrs -> Hashtbl.replace h ptrs.(0) p);
      t.vrec_index <- Some h;
      h

(* Decode one group's slot states; [memo] amortises the stream decode
   across the keys of a single scan. *)
let group_states t store memo g =
  match Hashtbl.find_opt memo g with
  | Some s -> s
  | None ->
      let s =
        match Hashtbl.find_opt (vrec_heads t store) g with
        | None -> None
        | Some head ->
            let rec chunks p =
              let n = PS.get store p in
              match n.Node.link with
              | Some nxt -> n.Node.ptrs :: chunks nxt
              | None -> [ n.Node.ptrs ]
            in
            let stream = Array.concat (chunks head) in
            let _g, base, states = Mvcc.group_of_stream ~dec:Fun.id stream in
            Some (base, states)
      in
      Hashtbl.replace memo g s;
      s

(* Newest version at or below the persisted clock; [None] for a
   tombstone, an unresolvable slot, or a chain entirely above the cut
   (impossible for a well-formed feed, but fail closed). *)
let resolve t store (ext : Mvcc.meta_ext) memo rptr =
  let g = rptr lsr ext.Mvcc.group_bits in
  match group_states t store memo g with
  | None -> None
  | Some (base, states) ->
      let i = rptr - base in
      if i < 0 || i >= Array.length states then None
      else
        match states.(i) with
        | R.Slot_empty | R.Slot_sealed -> None
        | R.Slot_chain v ->
            let rec newest = function
              | None -> None
              | Some (v : int R.version) ->
                  if v.R.epoch <= ext.Mvcc.clock then v.R.value
                  else newest v.R.prev
            in
            newest (Some v)

let search t ctx key =
  with_mu t (fun () ->
      match (t.view, t.store) with
      | Some v, Some store -> (
          match Sg.search v ctx key with
          | None -> None
          | Some payload -> (
              match t.mvcc with
              | None -> Some payload
              | Some ext ->
                  resolve t store ext (Hashtbl.create 1) payload))
      | _ -> None)

(* Holding [mu] across the whole walk pins the scan to one replay
   horizon — batch installs ([feed]) also run under [mu], so no leaf
   read here can be newer than another. *)
let range t ctx ~lo ~hi =
  with_mu t (fun () ->
      match (t.view, t.store) with
      | Some v, Some store -> (
          let pairs = Sg.range v ctx ~lo ~hi in
          match t.mvcc with
          | None -> pairs
          | Some ext ->
              let memo = Hashtbl.create 16 in
              List.filter_map
                (fun (k, rptr) ->
                  match resolve t store ext memo rptr with
                  | Some value -> Some (k, value)
                  | None -> None)
                pairs)
      | _ -> [])

let cardinal t =
  with_mu t (fun () ->
      match (t.view, t.store) with
      | Some v, Some store -> (
          match t.mvcc with
          | None -> Sg.cardinal v
          | Some ext ->
              (* live pairs at the cut: tombstoned keys still hold tree
                 pairs until the primary vacuums them *)
              let memo = Hashtbl.create 16 in
              Sg.fold_range v (Repro_core.Handle.ctx ~slot:0) ~lo:min_int
                ~hi:max_int ~init:0 (fun acc _k rptr ->
                  match resolve t store ext memo rptr with
                  | Some _ -> acc + 1
                  | None -> acc))
      | _ -> 0)

let mvcc_horizon t =
  with_mu t (fun () ->
      match t.mvcc with
      | None -> None
      | Some ext -> Some ext.Mvcc.clock)

let height t =
  with_mu t (fun () ->
      match t.view with None -> 0 | Some v -> Sg.height v)

(** Flip the replica read-write: subsequent mutations through
    {!handle} run against the replicated store, continuing exactly from
    the applied horizon. The feed must be drained (and stopped) first —
    the caller owns that ordering; see the promotion oracle in
    [lib/harness/crash.ml]. *)
let promote t = t.promoted <- true

let not_writable () = failwith "replica: read-only (not promoted)"

let not_mvcc_writable () =
  failwith
    "replica: durable-MVCC store — promote by reopening the replicated \
     files through Mvcc.open_durable, not through the plain-tree handle \
     (raw payloads would corrupt the version chains)"

(** A {!Tree_intf.handle} over the replica, servable by {!Server} like
    any other backend: search/range/stats work at the replay horizon;
    insert/delete/commit fail until {!promote}. *)
let handle t =
  {
    Repro_baseline.Tree_intf.name = "replica";
    search = (fun ctx k -> search t ctx k);
    insert =
      (fun ctx k v ->
        if not t.promoted then not_writable ()
        else if t.mvcc <> None then not_mvcc_writable ()
        else
          with_mu t (fun () ->
              match t.view with
              | Some view -> Sg.insert view ctx k v
              | None -> not_writable ()));
    delete =
      (fun ctx k ->
        if not t.promoted then not_writable ()
        else if t.mvcc <> None then not_mvcc_writable ()
        else
          with_mu t (fun () ->
              match t.view with
              | Some view -> Sg.delete view ctx k
              | None -> not_writable ()));
    cardinal = (fun () -> cardinal t);
    height = (fun () -> height t);
    commit =
      (fun () ->
        if t.promoted then
          with_mu t (fun () ->
              match t.view with Some view -> Sg.commit view | None -> ()));
    range = Some (fun ctx ~lo ~hi -> range t ctx ~lo ~hi);
    sharding = None;
    bulk_add = None;
    mvcc = None;
  }
