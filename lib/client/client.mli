(** Blocking client for the B-link network server.

    One connection, one caller at a time (no internal locking). The
    single-request helpers round-trip one frame; {!pipeline} streams a
    whole batch before reading any response, which is where the
    protocol's throughput comes from — and what the server's ack-fold
    into group commit amortises.

    Every call raises {!Repro_server.Protocol.Bad_frame} on a corrupt
    response, [End_of_file] when the server closes mid-reply, and
    [Unix.Unix_error] on socket failure. *)

type t

val connect : Unix.sockaddr -> t
val close : t -> unit
(** Idempotent. *)

val pipeline :
  t -> Repro_server.Protocol.request list -> Repro_server.Protocol.response list
(** Send the whole batch, then read exactly one response per request, in
    order. Sequence numbers are checked against the requests'. *)

val pipeline_sharded :
  t ->
  shards:int ->
  Repro_server.Protocol.request list ->
  Repro_server.Protocol.response list
(** {!pipeline} with the batch reordered so each shard's requests are
    contiguous (routing by {!Repro_storage.Shard_router}, matching a
    sharded server handle). Stable within a shard — same-key requests
    keep their relative order — and keyless requests (Range / Commit /
    Stats) are barriers nothing crosses. Responses are returned in the
    {e caller's} order. *)

val insert : t -> key:int -> value:int -> [ `Ok | `Duplicate ]
val delete : t -> key:int -> bool
val search : t -> key:int -> int option
val range : t -> lo:int -> hi:int -> (int * int) list
val commit : t -> unit
val stats : t -> Repro_server.Protocol.server_stats

val snapshot_open : t -> int
(** Open (or replace) this connection's pinned MVCC snapshot session and
    return its boundary epoch: until {!snapshot_close}, [search] and
    [range] on this connection answer at that cut. Raises
    {!Remote_error} on a backend without an MVCC surface. *)

val snapshot_close : t -> unit
(** Release the session snapshot (the server also releases it when the
    connection closes). *)

val wal_fetch :
  t ->
  shard:int ->
  from_lsn:int ->
  max_pages:int ->
  wait_ms:int ->
  Bytes.t list * int
(** One replication pull: durable WAL log pages of [shard] starting at
    [from_lsn] (long-polling up to [wait_ms] when caught up), and the
    LSN the next pull should start from. Empty pages = caught up.
    Raises {!Remote_error} [("stale")] when [from_lsn] predates the
    primary's retention window. *)

exception Remote_error of string
(** The server answered [Error] (it has closed the connection). *)
