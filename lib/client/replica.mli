(** WAL-shipping replication follower: pulls durable log pages from a
    primary ({!Client.wal_fetch}), replays them incrementally through
    {!Repro_storage.Wal.Apply} — the same scan-one-record step local
    recovery uses — into a private store, and serves read-only
    search/range at its {e replay horizon} (the LSN of the last applied
    COMMIT). The horizon is always a committed prefix of the primary's
    history: whole promoted batches only, never a torn one. {!promote}
    turns the replica read-write in place after the primary is gone.
    See doc/RECOVERY.md (replication) and doc/SERVER.md (opcodes). *)

exception Stream_error of string
(** The feed is not a valid continuation (LSN gap, regressed
    generation / incarnation, torn record) — re-seed the replica. *)

type t

val create : ?shard:int -> ?max_pages:int -> unit -> t
(** A fresh follower for one primary shard (default 0); its store is
    built from the first shipped page (which fixes the page geometry).
    [max_pages] bounds each pull (default 256). *)

val poll : ?wait_ms:int -> t -> Client.t -> [ `Applied of int | `Caught_up ]
(** One pull-and-apply round: fetch from the replica's cursor
    (long-polling [wait_ms], default 500, when caught up), feed every
    page, advance the cursor. [`Applied n] = [n] commit batches landed.
    @raise Stream_error on an invalid continuation.
    @raise Client.Remote_error (["stale"]) when the cursor predates the
    primary's retention window. *)

val feed : t -> Bytes.t -> unit
(** Feed one raw log page directly — the transport-free core of
    {!poll}; a caller holding raw log pages (a retained segment, a
    crash image) can replay them without a socket.
    @raise Stream_error as {!poll}. *)

val horizon : t -> int
(** LSN of the last applied COMMIT (-1 before the first): the replica's
    consistent read horizon. *)

val next_lsn : t -> int
(** Where the next pull starts. *)

val batches : t -> int
(** Commit batches applied over the replica's life. *)

val search : t -> Repro_core.Handle.ctx -> int -> int option
val range : t -> Repro_core.Handle.ctx -> lo:int -> hi:int -> (int * int) list
val cardinal : t -> int
val height : t -> int

val mvcc_horizon : t -> int option
(** The snapshot read horizon when the primary runs durable MVCC: the
    epoch clock persisted with the last applied metadata blob. [None]
    against a plain primary. Reads ({!search}/{!range}) resolve shipped
    version chains to the newest version at or below it — the exact
    committed cut the primary persisted; tombstoned keys read as
    absent. *)

val promote : t -> unit
(** Flip read-write: {!handle}'s insert/delete/commit start running
    against the replicated store, continuing from the applied horizon.
    Stop and drain the feed first — the caller owns that ordering. *)

val promoted : t -> bool

val handle : t -> Repro_baseline.Tree_intf.handle
(** A servable handle over the replica: search/range at the horizon;
    insert/delete/commit fail until {!promote}. *)
