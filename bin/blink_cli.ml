(* blink-cli: drive the trees from the command line.

   Subcommands:
     run       multi-domain workload against a chosen tree implementation
     compress  build / delete / compress cycle with occupancy reporting
     dump      print the structure of a small tree
     snapshot  save/load roundtrip timing for the page codec
     crash-test  fault-injection battery over the durable store
     serve     pipelined network server over a tree (TCP / Unix socket)
     client    scripted client session against a running server
     replica   WAL-shipping read replica of a running wal-mode server
     scan      pinned-snapshot consistent scan of a running --mvcc server
     backup    online backup of a running --mvcc server into a file
*)

open Cmdliner
open Repro_storage
open Repro_core
open Repro_baseline
open Repro_harness
module S = Sagiv.Make (Key.Int)
module C = Compress.Make (Key.Int)
module Co = Compactor.Make (Key.Int)
module V = Validate.Make (Key.Int)
module D = Dump.Make (Key.Int)
module Snap = Snapshot.Make (Key.Int)

(* The same operation modules over the disk backend, for --backend disk. *)
module Co_disk = Compactor.Make_on_store (Key.Int) (Tree_intf.Paged_int)
module V_disk = Validate.Make_on_store (Key.Int) (Tree_intf.Paged_int)

let impl_of_name ?(wal = false) ?commit_batch ~backend name =
  match (backend, name) with
  | "mem", "sagiv" -> Tree_intf.sagiv ()
  | "mem", "sagiv-compact" -> Tree_intf.sagiv ~enqueue_on_delete:true ()
  | "mem", "sagiv-mvcc" -> Tree_intf.sagiv_mvcc ()
  | "disk", "sagiv" -> Tree_intf.sagiv_disk ~wal ?commit_batch ()
  | "disk", "sagiv-compact" ->
      Tree_intf.sagiv_disk ~enqueue_on_delete:true ~wal ?commit_batch ()
  | "disk", s ->
      failwith (Printf.sprintf "tree %S has no disk backend (only sagiv does)" s)
  | "mem", "lehman-yao" | "mem", "ly" -> Tree_intf.lehman_yao
  | "mem", "lock-couple" | "mem", "lc" -> Tree_intf.lock_couple
  | "mem", "lc-optimistic" | "mem", "lco" -> Tree_intf.lock_couple_optimistic
  | "mem", "coarse" -> Tree_intf.coarse
  | "mem", s -> failwith (Printf.sprintf "unknown tree %S" s)
  | b, _ -> failwith (Printf.sprintf "unknown backend %S (mem or disk)" b)

let mix_of_name = function
  | "search" -> Workload.search_only
  | "insert" -> Workload.insert_only
  | "balanced" -> Workload.balanced
  | "read-mostly" -> Workload.read_mostly
  | "mixed" -> Workload.mixed_sid
  | "delete-heavy" -> Workload.delete_heavy
  | s -> failwith (Printf.sprintf "unknown mix %S" s)

let dist_of_name = function
  | "uniform" -> Repro_util.Distribution.Uniform
  | "zipf" -> Repro_util.Distribution.Zipfian 0.99
  | "sequential" -> Repro_util.Distribution.Sequential
  | "hotspot" -> Repro_util.Distribution.Hotspot { hot_fraction = 0.1; hot_probability = 0.9 }
  | s -> failwith (Printf.sprintf "unknown distribution %S" s)

(* --combine MODE -> (batch-level dedup on, leaf-level combining on) *)
let combine_of_name = function
  | "off" -> (false, false)
  | "batch" -> (true, false)
  | "leaf" -> (false, true)
  | "both" -> (true, true)
  | s -> failwith (Printf.sprintf "unknown combine mode %S (off, batch, leaf, both)" s)

let maybe_combine combine_leaf (h : Tree_intf.handle) =
  if combine_leaf then
    let c, h' = Tree_intf.with_combining h in
    (Some c, h')
  else (None, h)

let print_combine = function
  | None -> ()
  | Some c ->
      let ct = Combine.counters c in
      Printf.printf "combine: registered=%d installs=%d combined=%d applied=%d\n"
        ct.Combine.c_registered ct.Combine.c_installs ct.Combine.c_combined
        ct.Combine.c_applied

(* -- run -- *)

(* Wrap a handle so every [every]-th completed mutation (a global
   counter: whichever worker crosses the boundary issues the call)
   triggers a durable commit — the CLI's --sync-every / --commit-every
   semantics. *)
let with_periodic_commit every (h : Tree_intf.handle) =
  if every <= 0 then h
  else begin
    let count = Atomic.make 0 in
    let bump () =
      if Atomic.fetch_and_add count 1 mod every = every - 1 then
        h.Tree_intf.commit ()
    in
    {
      h with
      Tree_intf.insert =
        (fun c k v ->
          let r = h.Tree_intf.insert c k v in
          bump ();
          r);
      delete =
        (fun c k ->
          let r = h.Tree_intf.delete c k in
          bump ();
          r);
    }
  end

(* Per-shard io lines next to the merged one: the skew observability
   surface (faults / commits / fsyncs / queue depth per shard). *)
let print_sharded_io sst =
  Array.iteri
    (fun i io -> Printf.printf "io[s%d]: %s\n" i (Stats.io_to_string io))
    (Tree_intf.Sharded_int.per_shard_io sst);
  Printf.printf "io: %s\n" (Stats.io_to_string (Tree_intf.Sharded_int.io_stats sst))

let run_cmd tree_name backend mix_name dist_name domains ops key_space preload order
    seed compactors validate latency durability sync_every commit_every
    commit_batch shards combine zipf =
  let wal =
    match durability with
    | "sync" -> false
    | "wal" -> true
    | s -> failwith (Printf.sprintf "unknown durability %S (sync or wal)" s)
  in
  if wal && backend <> "disk" then
    failwith "--durability wal requires --backend disk";
  if sync_every > 0 && wal then
    failwith "--sync-every drives the sync path; use --commit-every with --durability wal";
  if commit_every > 0 && not wal then
    failwith "--commit-every drives the group-commit path; use --sync-every with --durability sync";
  if (sync_every > 0 || commit_every > 0) && backend <> "disk" then
    failwith "--sync-every/--commit-every require --backend disk";
  if shards > 1 && backend <> "disk" then
    failwith "--shards requires --backend disk";
  let every = max sync_every commit_every in
  let commit_batch = if commit_batch > 1 then Some commit_batch else None in
  let combine_batch, combine_leaf = combine_of_name combine in
  if combine_batch then
    Printf.printf
      "note: batch-level dedup lives in the pipelined server (serve --combine); \
       the direct driver path applies leaf combining only\n";
  let dist =
    match zipf with
    | Some theta -> Repro_util.Distribution.Zipfian theta
    | None -> dist_of_name dist_name
  in
  let dist_label = Repro_util.Distribution.kind_to_string dist in
  let impl = impl_of_name ~wal ?commit_batch ~backend tree_name in
  let spec =
    Workload.spec ~op_mix:(mix_of_name mix_name) ~key_space ~dist ~preload ()
  in
  Printf.printf
    "tree=%s backend=%s mix=%s dist=%s domains=%d ops/domain=%d keyspace=%d preload=%d order=%d%s\n%!"
    impl.Tree_intf.impl_name backend mix_name dist_label domains ops key_space preload
    order
    ((if backend = "disk" then
        Printf.sprintf " durability=%s%s" durability
          (if every > 0 then Printf.sprintf " every=%d" every else "")
      else "")
    ^ (if shards > 1 then Printf.sprintf " shards=%d" shards else "")
    ^ if combine_leaf then " combine=leaf" else "");
  let needs_raw = compactors > 0 || (validate && tree_name <> "lehman-yao") in
  if needs_raw && shards > 1 then
    failwith "--compactors/--validate are per-tree; not supported with --shards";
  if needs_raw && not (String.length tree_name >= 5 && String.sub tree_name 0 5 = "sagiv")
  then failwith "--compactors/--validate require a sagiv tree";
  if needs_raw then begin
    let enqueue_on_delete = compactors > 0 || tree_name = "sagiv-compact" in
    let finish (r, comp) =
      Printf.printf "elapsed %.3fs, %s ops/s\n" r.Driver.elapsed_s
        (Report.fmt_si r.Driver.throughput);
      Printf.printf "workers:    %s\n" (Stats.to_string r.Driver.stats);
      (match r.Driver.latency with
      | Some h -> Printf.printf "latency:    %s\n" (Driver.percentiles_line h)
      | None -> ());
      if compactors > 0 then Printf.printf "compactors: %s\n" (Stats.to_string comp)
    in
    let finish_check check =
      if validate then begin
        let rep = check () in
        if Validate.ok rep then
          Printf.printf "validate: OK (height=%d nodes=%d keys=%d)\n" rep.Validate.height
            rep.Validate.total_nodes rep.Validate.total_keys
        else begin
          Printf.printf "validate: FAILED\n";
          List.iter (fun e -> Printf.printf "  %s\n" e) rep.Validate.errors;
          exit 1
        end
      end
    in
    let measure h run_workers =
      let n = Driver.preload h ~seed spec in
      Printf.printf "preloaded %d keys\n%!" n;
      if compactors = 0 then
        ( Driver.run_ops ~measure_latency:latency h ~domains ~ops_per_domain:ops ~seed
            spec,
          Stats.create () )
      else run_workers ()
    in
    match backend with
    | "mem" ->
        let raw, h = Tree_intf.sagiv_raw ~enqueue_on_delete ~order () in
        let comb, h = maybe_combine combine_leaf h in
        finish
          (measure h (fun () ->
               Driver.run_ops_with_compaction raw h ~domains ~compactors
                 ~ops_per_domain:ops ~seed spec));
        print_combine comb;
        finish_check (fun () -> V.check raw)
    | _ ->
        let raw, h =
          Tree_intf.sagiv_disk_raw ~enqueue_on_delete ~wal ?commit_batch ~order ()
        in
        let h = with_periodic_commit every h in
        let comb, h = maybe_combine combine_leaf h in
        finish
          (measure h (fun () ->
               Driver.run_ops_with_workers h ~domains ~workers:compactors
                 ~worker:(fun ~stop ctx -> Co_disk.run_worker raw ctx ~stop)
                 ~ops_per_domain:ops ~seed spec));
        print_combine comb;
        Printf.printf "io: %s\n"
          (Stats.io_to_string (Tree_intf.Paged_int.io_stats raw.Handle.store));
        finish_check (fun () -> V_disk.check raw)
  end
  else begin
    (* Disk runs always go through the raw constructor so the store is at
       hand for the io/commit counters in the summary line. *)
    let store, sst, h =
      if backend = "disk" && shards > 1 then begin
        let enqueue_on_delete = tree_name = "sagiv-compact" in
        let sst, _trees, h =
          Tree_intf.sagiv_disk_sharded_raw ~enqueue_on_delete ~wal ?commit_batch
            ~shards ~order ()
        in
        (None, Some sst, with_periodic_commit every h)
      end
      else if backend = "disk" then begin
        let enqueue_on_delete = tree_name = "sagiv-compact" in
        let raw, h =
          Tree_intf.sagiv_disk_raw ~enqueue_on_delete ~wal ?commit_batch ~order ()
        in
        (Some raw.Handle.store, None, with_periodic_commit every h)
      end
      else (None, None, impl.Tree_intf.make ~order)
    in
    let comb, h = maybe_combine combine_leaf h in
    let n = Driver.preload h ~seed spec in
    Printf.printf "preloaded %d keys\n%!" n;
    let r = Driver.run_ops ~measure_latency:latency h ~domains ~ops_per_domain:ops ~seed spec in
    Printf.printf "elapsed %.3fs, %s ops/s\n" r.Driver.elapsed_s
      (Report.fmt_si r.Driver.throughput);
    Printf.printf "workers: %s\n" (Stats.to_string r.Driver.stats);
    (match r.Driver.latency with
    | Some h -> Printf.printf "latency: %s\n" (Driver.percentiles_line h)
    | None -> ());
    print_combine comb;
    (match store with
    | Some s -> Printf.printf "io: %s\n" (Stats.io_to_string (Tree_intf.Paged_int.io_stats s))
    | None -> ());
    (match sst with Some sst -> print_sharded_io sst | None -> ());
    Printf.printf "cardinal=%d height=%d\n" (h.Tree_intf.cardinal ()) (h.Tree_intf.height ())
  end

(* -- compress -- *)

let compress_cmd n order keep_every mode =
  let enqueue = mode = "queue" in
  let t = S.create ~order ~enqueue_on_delete:enqueue () in
  let c = S.ctx ~slot:0 in
  for k = 1 to n do
    ignore (S.insert t c k k)
  done;
  let show label =
    let rep = V.check t in
    Printf.printf "%-28s height=%d nodes=%-6d keys=%-7d bytes=%s%s\n" label
      rep.Validate.height rep.Validate.total_nodes rep.Validate.total_keys
      (Report.fmt_bytes rep.Validate.encoded_bytes)
      (if Validate.ok rep then "" else "  INVALID!")
  in
  show "built:";
  for k = 1 to n do
    if k mod keep_every <> 0 then ignore (S.delete t c k)
  done;
  show "after deletes:";
  (match mode with
  | "scan" ->
      let passes = C.compress_to_fixpoint t c in
      Printf.printf "scan compression: %d passes\n" passes
  | "queue" -> (
      match Co.run_until_empty t c with
      | `Drained -> Printf.printf "queue drained (merges=%d)\n" c.Handle.stats.Stats.merges
      | `Step_limit -> Printf.printf "step limit hit\n")
  | m -> failwith ("unknown mode " ^ m));
  let freed = S.reclaim t in
  Printf.printf "reclaimed %d pages\n" freed;
  show "after compression:"

(* -- dump -- *)

let dump_cmd n order =
  let t = S.create ~order () in
  let c = S.ctx ~slot:0 in
  for k = 1 to n do
    ignore (S.insert t c k (k * 10))
  done;
  D.print t

(* -- snapshot / checkpoint -- *)

let snapshot_cmd n order path =
  let module Ck = Checkpoint.Make (Key.Int) in
  let t = S.create ~order () in
  let c = S.ctx ~slot:0 in
  for k = 1 to n do
    ignore (S.insert t c k k)
  done;
  match path with
  | None ->
      let t0 = Unix.gettimeofday () in
      let bytes = Snap.save t in
      let t1 = Unix.gettimeofday () in
      let t' = Snap.load bytes in
      let t2 = Unix.gettimeofday () in
      Printf.printf "saved %d keys: %s in %.3fs, loaded in %.3fs\n" n
        (Report.fmt_bytes (Bytes.length bytes))
        (t1 -. t0) (t2 -. t1);
      let rep = V.check t' in
      Printf.printf "loaded tree: %s (keys=%d)\n"
        (if Validate.ok rep then "valid" else "INVALID")
        rep.Validate.total_keys
  | Some path ->
      let t0 = Unix.gettimeofday () in
      let pf = Paged_file.create_file path in
      Ck.save t pf;
      Paged_file.close pf;
      let t1 = Unix.gettimeofday () in
      let pf = Paged_file.open_file path in
      let t' = Ck.load pf in
      let pages = Paged_file.pages pf in
      Paged_file.close pf;
      let t2 = Unix.gettimeofday () in
      Printf.printf "checkpointed %d keys to %s: %d pages (%s) in %.3fs, loaded in %.3fs\n"
        n path pages
        (Report.fmt_bytes (pages * Paged_file.default_page_size))
        (t1 -. t0) (t2 -. t1);
      let rep = V.check t' in
      Printf.printf "loaded tree: %s (keys=%d)\n"
        (if Validate.ok rep then "valid" else "INVALID")
        rep.Validate.total_keys

(* -- crash-test: fault-injection battery -- *)

let crash_test_cmd quick verbose shards =
  let log = if verbose then Some (fun s -> Printf.printf "%s\n%!" s) else None in
  Printf.printf
    "crash battery (%s, %d shards): simulated crashes at every failpoint site...\n%!"
    (if quick then "quick" else "full")
    shards;
  match Crash.battery ~quick ~shards ?log () with
  | exception Failure msg ->
      Printf.printf "crash battery FAILED: %s\n" msg;
      exit 1
  | outcomes ->
      List.iter (fun o -> Printf.printf "  %s\n" (Crash.pp_outcome o)) outcomes;
      let crashed = List.length (List.filter (fun o -> o.Crash.crashed) outcomes) in
      Printf.printf "%d runs, %d crashed, all recovered to the oracle\n" (List.length outcomes)
        crashed;
      (match Failpoint.unexercised () with
      | [] -> Printf.printf "all %d failpoint sites exercised\n" (List.length (Failpoint.registered ()))
      | dead ->
          Printf.printf "FAILED: sites registered but never exercised: %s\n"
            (String.concat ", " dead);
          exit 1)

(* -- trace: record and replay -- *)

let trace_gen_cmd path mix_name dist_name ops key_space seed =
  let spec =
    Workload.spec ~op_mix:(mix_of_name mix_name) ~key_space
      ~dist:(dist_of_name dist_name) ()
  in
  let ops_list = Trace.generate ~seed ~ops spec in
  Trace.save path ops_list;
  Printf.printf "wrote %d operations to %s\n" (List.length ops_list) path

let trace_run_cmd path order =
  let ops = Trace.load path in
  Printf.printf "replaying %d operations from %s on every tree:\n" (List.length ops) path;
  let results =
    List.map
      (fun (impl : Tree_intf.impl) ->
        let h = impl.Tree_intf.make ~order in
        let c = Handle.ctx ~slot:0 in
        let t0 = Unix.gettimeofday () in
        let ins, del, found = Trace.replay h c ops in
        let dt = Unix.gettimeofday () -. t0 in
        Printf.printf "  %-14s %.3fs  inserted=%d deleted=%d hits=%d cardinal=%d\n"
          impl.Tree_intf.impl_name dt ins del found
          (h.Tree_intf.cardinal ());
        (ins, del, found, h.Tree_intf.cardinal ()))
      Tree_intf.all
  in
  match results with
  | first :: rest when List.for_all (( = ) first) rest ->
      Printf.printf "all trees agree\n"
  | _ ->
      Printf.printf "TREES DISAGREE\n";
      exit 1

(* -- serve / client -- *)

let string_of_sockaddr = function
  | Unix.ADDR_UNIX p -> Printf.sprintf "unix:%s" p
  | Unix.ADDR_INET (a, p) ->
      Printf.sprintf "tcp:%s:%d" (Unix.string_of_inet_addr a) p

let serve_cmd tree_name backend order durability commit_batch workers port
    unix_path shards combine mvcc path =
  let cfg =
    match
      Repro_server.Serve_config.validate ~backend ~durability ~shards ~mvcc
        ~path
    with
    | Ok c -> c
    | Error msg -> failwith msg
  in
  let wal = cfg.Repro_server.Serve_config.wal in
  let commit_batch = if commit_batch > 1 then Some commit_batch else None in
  let enqueue_on_delete_of_tree () =
    match tree_name with
    | "sagiv" -> false
    | "sagiv-compact" -> true
    | s -> failwith (Printf.sprintf "tree %S has no disk backend" s)
  in
  (* File-backed disk serves open-or-create through the partition layer
     (an unsharded store is one partition); a reopen recovers every
     shard — WAL replay included — before the listener comes up. *)
  let reopening =
    match path with
    | Some p -> Sys.file_exists (Tree_intf.Sharded_int.shard_path p 0)
    | None -> false
  in
  let mk_sst () =
    match path with
    | None -> Tree_intf.Sharded_int.create_memory ~wal ?commit_batch ~shards ()
    | Some p ->
        let wal_path = if wal then Some (p ^ ".wal") else None in
        if reopening then
          Tree_intf.Sharded_int.open_file ?wal_path ?commit_batch ~shards p
        else Tree_intf.Sharded_int.create_file ?wal_path ?commit_batch ~shards p
  in
  let sst, store, h =
    if mvcc && backend = "disk" then begin
      (* durable MVCC: the version chains persist through the same paged
         stores as the tree (one WAL, one group commit per shard), so
         SNAPSHOT sessions and consistent scans survive kill -9 and a
         reopen picks every chain back up *)
      let sst = mk_sst () in
      let enqueue_on_delete = enqueue_on_delete_of_tree () in
      let _trees, h =
        if reopening then Tree_intf.sagiv_mvcc_disk_open ~enqueue_on_delete sst
        else Tree_intf.sagiv_mvcc_disk_on ~enqueue_on_delete ~order sst
      in
      (Some sst, None, h)
    end
    else if mvcc then begin
      (* version-stamped memory backend: SNAPSHOT sessions and
         per-request consistent RANGE cuts; sharded composition shares
         one epoch *)
      let impl =
        if shards > 1 then Tree_intf.sagiv_mvcc_sharded ~shards ()
        else Tree_intf.sagiv_mvcc ()
      in
      (None, None, impl.Tree_intf.make ~order)
    end
    else if backend = "disk" && path <> None then begin
      (* file-backed plain serve: partition layer over the on-disk
         store(s), open-or-create *)
      let sst = mk_sst () in
      let enqueue_on_delete = enqueue_on_delete_of_tree () in
      let _trees, h =
        if reopening then Tree_intf.sagiv_disk_sharded_open ~enqueue_on_delete sst
        else Tree_intf.sagiv_disk_sharded_on ~enqueue_on_delete ~order sst
      in
      (Some sst, None, h)
    end
    else if shards > 1 then begin
      (* sharded serve: N independent store+WAL partitions behind one
         routed handle; the server folds each batch's acks into only the
         shards it touched *)
      let sst, _trees, h =
        Tree_intf.sagiv_disk_sharded_raw
          ~enqueue_on_delete:(enqueue_on_delete_of_tree ()) ~wal ?commit_batch
          ~shards ~order ()
      in
      (Some sst, None, h)
    end
    else if backend = "disk" then begin
      (* the raw constructor keeps the store at hand for the WAL
         subscription source below *)
      let raw, h =
        Tree_intf.sagiv_disk_raw
          ~enqueue_on_delete:(enqueue_on_delete_of_tree ()) ~wal ?commit_batch
          ~order ()
      in
      (None, Some raw.Handle.store, h)
    end
    else
      let impl = impl_of_name ~wal ?commit_batch ~backend tree_name in
      (None, None, impl.Tree_intf.make ~order)
  in
  (* WAL mode publishes the log over the Subscribe opcode: one source
     per shard (an unsharded primary is shard 0 of 1) *)
  let wal_source =
    if not wal then None
    else
      match (sst, store) with
      | Some sst, _ ->
          let stores = Tree_intf.Sharded_int.stores sst in
          Some
            {
              Repro_server.Server.ws_shards = Array.length stores;
              ws_fetch =
                (fun ~shard ~lsn ~max_pages ->
                  Tree_intf.Paged_int.wal_fetch stores.(shard) ~lsn ~max_pages);
              ws_wait =
                (fun ~shard ~lsn ~timeout ->
                  Tree_intf.Paged_int.wal_wait stores.(shard) ~lsn ~timeout);
            }
      | None, Some store ->
          Some
            {
              Repro_server.Server.ws_shards = 1;
              ws_fetch =
                (fun ~shard:_ ~lsn ~max_pages ->
                  Tree_intf.Paged_int.wal_fetch store ~lsn ~max_pages);
              ws_wait =
                (fun ~shard:_ ~lsn ~timeout ->
                  Tree_intf.Paged_int.wal_wait store ~lsn ~timeout);
            }
      | None, None -> None
  in
  let listen =
    (if port >= 0 then [ Unix.ADDR_INET (Unix.inet_addr_loopback, port) ]
     else [])
    @ match unix_path with Some p -> [ Unix.ADDR_UNIX p ] | None -> []
  in
  if listen = [] then failwith "nothing to listen on (--port and/or --unix)";
  let combine_batch, combine_leaf = combine_of_name combine in
  let comb, h = maybe_combine combine_leaf h in
  (* acks are durable exactly when the backend can group-commit them *)
  let srv =
    Repro_server.Server.start ~workers
      ~durable_acks:cfg.Repro_server.Serve_config.durable_acks ~combine_batch
      ?wal_source ~handle:h ~listen ()
  in
  List.iter
    (fun a -> Printf.printf "listening on %s\n%!" (string_of_sockaddr a))
    (Repro_server.Server.addresses srv);
  Printf.printf "tree=%s backend=%s durability=%s workers=%d%s%s%s%s%s (ctrl-C stops)\n%!"
    h.Tree_intf.name backend
    (if backend = "disk" then durability else "none")
    workers
    (if shards > 1 then Printf.sprintf " shards=%d" shards else "")
    (if combine <> "off" then Printf.sprintf " combine=%s" combine else "")
    (match wal_source with Some _ -> " replication=on" | None -> "")
    (if mvcc then " mvcc=on" else "")
    (match path with
    | Some p -> Printf.sprintf " path=%s%s" p (if reopening then " (reopened)" else "")
    | None -> "");
  let stop = Atomic.make false in
  let on_signal _ = Atomic.set stop true in
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
  while not (Atomic.get stop) do
    Unix.sleepf 0.2
  done;
  Printf.printf "\nshutting down...\n%!";
  Repro_server.Server.stop srv;
  h.Tree_intf.commit ();
  Printf.printf "%s\n"
    (Stats.server_to_string (Repro_server.Server.stats srv));
  print_combine comb;
  (match sst with Some sst -> print_sharded_io sst | None -> ());
  (match h.Tree_intf.mvcc with
  | Some m ->
      let g = m.Tree_intf.gauges () in
      Printf.printf "mvcc: min_pinned=%s pins=%d versions=%d pruned=%d gc_pending=%d\n"
        (if g.Tree_intf.g_min_pinned = max_int then "none"
         else string_of_int g.Tree_intf.g_min_pinned)
        g.Tree_intf.g_snap_pins g.Tree_intf.g_live_versions
        g.Tree_intf.g_pruned_versions g.Tree_intf.g_gc_pending
  | None -> ());
  Printf.printf "cardinal=%d height=%d\n" (h.Tree_intf.cardinal ())
    (h.Tree_intf.height ());
  (* file-backed stores take a final checkpoint so the next open needs
     no WAL replay (a crash before this point recovers from the log) *)
  (match (sst, path) with
  | Some sst, Some _ -> Tree_intf.Sharded_int.close sst
  | _ -> ());
  (match unix_path with
  | Some p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
  | None -> ())

let parse_request line =
  let module P = Repro_server.Protocol in
  match
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun s -> s <> "")
  with
  | [] -> None
  | [ "insert"; k; v ] ->
      Some (P.Insert { key = int_of_string k; value = int_of_string v })
  | [ "delete"; k ] -> Some (P.Delete { key = int_of_string k })
  | [ "search"; k ] -> Some (P.Search { key = int_of_string k })
  | [ "range"; lo; hi ] ->
      Some (P.Range { lo = int_of_string lo; hi = int_of_string hi })
  | [ "commit" ] -> Some P.Commit
  | [ "stats" ] -> Some P.Stats
  | [ "snapshot" ] -> Some (P.Snapshot { close = false })
  | [ "snapshot-close" ] -> Some (P.Snapshot { close = true })
  | w :: _ -> failwith (Printf.sprintf "unknown command %S" w)

let client_cmd host port unix_path script =
  let module P = Repro_server.Protocol in
  let addr =
    match unix_path with
    | Some p -> Unix.ADDR_UNIX p
    | None -> Unix.ADDR_INET (Unix.inet_addr_of_string host, port)
  in
  let lines =
    if script <> [] then script
    else begin
      (* read the session from stdin, one command per line *)
      let acc = ref [] in
      (try
         while true do
           acc := input_line stdin :: !acc
         done
       with End_of_file -> ());
      List.rev !acc
    end
  in
  let reqs = List.filter_map parse_request lines in
  if reqs = [] then failwith "empty session (commands on argv or stdin)";
  let c = Repro_client.Client.connect addr in
  Fun.protect
    ~finally:(fun () -> Repro_client.Client.close c)
    (fun () ->
      (* the whole script goes out as one pipelined batch *)
      let resps = Repro_client.Client.pipeline c reqs in
      List.iter2
        (fun req resp ->
          Format.printf "%a -> %a@." P.pp_request req P.pp_response resp)
        reqs resps;
      if List.exists (function P.Error _ -> true | _ -> false) resps then
        exit 1)

(* -- scan / backup: pinned-snapshot reads of a running --mvcc server -- *)

let with_session ~host ~port ~unix_path f =
  let addr =
    match unix_path with
    | Some p -> Unix.ADDR_UNIX p
    | None -> Unix.ADDR_INET (Unix.inet_addr_of_string host, port)
  in
  let c = Repro_client.Client.connect addr in
  Fun.protect ~finally:(fun () -> Repro_client.Client.close c) (fun () -> f c)

(* One pinned chunked sweep: SNAPSHOT open, windowed RANGEs — all
   answered at the same cut because the session pin outlives every
   window — then SNAPSHOT close. Chunking bounds reply frames, not
   consistency: concurrent writers never tear the result. *)
let pinned_sweep c ~lo ~hi ~chunk =
  let module Cl = Repro_client.Client in
  let epoch = Cl.snapshot_open c in
  Fun.protect
    ~finally:(fun () -> try Cl.snapshot_close c with _ -> ())
    (fun () ->
      let rec go wlo acc =
        if wlo > hi then acc
        else begin
          let whi = if hi - wlo >= chunk then wlo + chunk - 1 else hi in
          let acc = List.rev_append (Cl.range c ~lo:wlo ~hi:whi) acc in
          if whi >= hi then acc else go (whi + 1) acc
        end
      in
      (epoch, List.rev (go lo [])))

let scan_cmd host port unix_path lo hi chunk =
  try
    with_session ~host ~port ~unix_path (fun c ->
        let epoch, pairs = pinned_sweep c ~lo ~hi ~chunk in
        List.iter (fun (k, v) -> Printf.printf "%d %d\n" k v) pairs;
        Printf.eprintf "scanned %d pairs at epoch %d (keys %d..%d)\n%!"
          (List.length pairs) epoch lo hi)
  with Repro_client.Client.Remote_error msg ->
    Printf.eprintf "server refused: %s\n%!" msg;
    exit 1

let backup_cmd host port unix_path out lo hi chunk =
  try
    with_session ~host ~port ~unix_path (fun c ->
        let epoch, pairs = pinned_sweep c ~lo ~hi ~chunk in
        let oc = open_out out in
        Printf.fprintf oc "# blink-backup epoch=%d pairs=%d lo=%d hi=%d\n" epoch
          (List.length pairs) lo hi;
        List.iter (fun (k, v) -> Printf.fprintf oc "%d %d\n" k v) pairs;
        close_out oc;
        Printf.printf "backed up %d pairs at epoch %d to %s\n%!"
          (List.length pairs) epoch out)
  with Repro_client.Client.Remote_error msg ->
    Printf.eprintf "server refused: %s\n%!" msg;
    exit 1

(* -- replica: WAL-shipping follower -- *)

let replica_cmd host port unix_path shard serve_port workers poll_ms once
    promote_flag =
  let module R = Repro_client.Replica in
  let addr =
    match unix_path with
    | Some p -> Unix.ADDR_UNIX p
    | None -> Unix.ADDR_INET (Unix.inet_addr_of_string host, port)
  in
  let r = R.create ~shard () in
  (* the replica is servable from the start: read-only at its replay
     horizon, read-write after promotion *)
  let srv =
    if serve_port < 0 then None
    else begin
      let srv =
        Repro_server.Server.start ~workers ~durable_acks:false
          ~handle:(R.handle r)
          ~listen:[ Unix.ADDR_INET (Unix.inet_addr_loopback, serve_port) ]
          ()
      in
      List.iter
        (fun a ->
          Printf.printf "replica listening on %s\n%!" (string_of_sockaddr a))
        (Repro_server.Server.addresses srv);
      Some srv
    end
  in
  let stop = Atomic.make false in
  let on_signal _ = Atomic.set stop true in
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
  Printf.printf "replicating shard %d from %s%s%s\n%!" shard
    (string_of_sockaddr addr)
    (if promote_flag then " (promote on disconnect)" else "")
    (if once then " (once)" else "");
  let client = ref (Some (Repro_client.Client.connect addr)) in
  let was_caught_up = ref false in
  (* pull loop: long-poll the primary; a broken connection ends it *)
  (try
     while (not (Atomic.get stop)) && !client <> None do
       match !client with
       | None -> ()
       | Some c -> (
           match R.poll ~wait_ms:poll_ms r c with
           | `Applied n ->
               was_caught_up := false;
               Printf.printf "applied %d batch%s (horizon lsn %d, %d keys)\n%!"
                 n
                 (if n = 1 then "" else "es")
                 (R.horizon r) (R.cardinal r)
           | `Caught_up ->
               if not !was_caught_up then
                 Printf.printf "caught up (horizon lsn %d, %d keys)\n%!"
                   (R.horizon r) (R.cardinal r);
               was_caught_up := true;
               if once then begin
                 (match !client with
                 | Some c -> Repro_client.Client.close c
                 | None -> ());
                 client := None
               end
           | exception (End_of_file | Unix.Unix_error _) ->
               Printf.printf "primary connection lost\n%!";
               (match !client with
               | Some c -> ( try Repro_client.Client.close c with _ -> ())
               | None -> ());
               client := None)
     done
   with
  | R.Stream_error msg ->
      Printf.printf "stream error: %s — re-seed the replica\n%!" msg;
      exit 1
  | Repro_client.Client.Remote_error msg ->
      Printf.printf "primary refused: %s\n%!" msg;
      exit 1);
  (match !client with
  | Some c -> ( try Repro_client.Client.close c with _ -> ())
  | None -> ());
  if promote_flag && not once then begin
    R.promote r;
    Printf.printf "promoted: read-write at horizon lsn %d (%d keys, height %d)\n%!"
      (R.horizon r) (R.cardinal r) (R.height r);
    (* keep serving the promoted tree until signalled *)
    if srv <> None then
      while not (Atomic.get stop) do
        Unix.sleepf 0.2
      done
  end;
  (match srv with Some srv -> Repro_server.Server.stop srv | None -> ());
  Printf.printf "replica done: %d batches applied, horizon lsn %d, cardinal=%d\n%!"
    (R.batches r) (R.horizon r) (R.cardinal r)

(* -- cmdliner plumbing -- *)

let tree_arg =
  Arg.(value & opt string "sagiv"
       & info [ "tree"; "t" ] ~docv:"TREE"
           ~doc:"Tree: sagiv, sagiv-compact, lehman-yao, lock-couple, lc-optimistic, coarse.")

let backend_arg =
  Arg.(value & opt string "mem"
       & info [ "backend"; "b" ] ~docv:"BACKEND"
           ~doc:"Page store backend: mem (in-memory store) or disk \
                 (buffer-pooled paged store; sagiv trees only).")

let mix_arg =
  Arg.(value & opt string "balanced"
       & info [ "mix"; "m" ] ~docv:"MIX"
           ~doc:"Mix: search, insert, balanced, read-mostly, mixed, delete-heavy.")

let dist_arg =
  Arg.(value & opt string "uniform"
       & info [ "dist" ] ~docv:"DIST" ~doc:"Distribution: uniform, zipf, sequential, hotspot.")

let domains_arg =
  Arg.(value & opt int 4 & info [ "domains"; "d" ] ~docv:"N" ~doc:"Worker domains.")

let ops_arg =
  Arg.(value & opt int 100_000 & info [ "ops"; "n" ] ~docv:"N" ~doc:"Operations per domain.")

let space_arg =
  Arg.(value & opt int 200_000 & info [ "keyspace" ] ~docv:"N" ~doc:"Key space size.")

let preload_arg =
  Arg.(value & opt int 100_000 & info [ "preload" ] ~docv:"N" ~doc:"Keys preloaded.")

let order_arg =
  Arg.(value & opt int 16 & info [ "order"; "k" ] ~docv:"K" ~doc:"Min pairs per node (cap 2K).")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let compactors_arg =
  Arg.(value & opt int 0 & info [ "compactors" ] ~docv:"N" ~doc:"Background compactor domains (sagiv only).")

let validate_arg =
  Arg.(value & flag & info [ "validate" ] ~doc:"Check structural invariants afterwards (sagiv only).")

let latency_arg =
  Arg.(value & flag & info [ "latency" ] ~doc:"Measure per-operation latency percentiles.")

let durability_arg =
  Arg.(value & opt string "sync"
       & info [ "durability" ] ~docv:"MODE"
           ~doc:"Disk durability mode: sync (stop-the-world checkpoints) or wal \
                 (write-ahead log with group commit).")

let sync_every_arg =
  Arg.(value & opt int 0
       & info [ "sync-every" ] ~docv:"N"
           ~doc:"With --durability sync: full store sync every N completed \
                 mutations (0 = never).")

let commit_every_arg =
  Arg.(value & opt int 0
       & info [ "commit-every" ] ~docv:"N"
           ~doc:"With --durability wal: durable group commit every N completed \
                 mutations (0 = never).")

let commit_batch_arg =
  Arg.(value & opt int 1
       & info [ "commit-batch" ] ~docv:"B"
           ~doc:"Group-commit batch target: a leader lingers for up to B commit \
                 requests before the shared log fsync.")

let shards_arg =
  Arg.(value & opt int 1
       & info [ "shards" ] ~docv:"N"
           ~doc:"Partition the keyspace into N independent store+WAL shards \
                 (deterministic hash routing; disk backend only).")

let combine_arg =
  Arg.(value & opt string "off"
       & info [ "combine" ] ~docv:"MODE"
           ~doc:"Hot-key combining: off, batch (server-side pipeline-batch \
                 dedup), leaf (publication-array combining under the tree \
                 interface), or both.")

let zipf_arg =
  Arg.(value & opt (some float) None
       & info [ "zipf" ] ~docv:"THETA"
           ~doc:"Zipfian key skew with exponent THETA (overrides --dist).")

let run_t =
  Term.(
    const run_cmd $ tree_arg $ backend_arg $ mix_arg $ dist_arg $ domains_arg $ ops_arg
    $ space_arg $ preload_arg $ order_arg $ seed_arg $ compactors_arg $ validate_arg
    $ latency_arg $ durability_arg $ sync_every_arg $ commit_every_arg
    $ commit_batch_arg $ shards_arg $ combine_arg $ zipf_arg)

let n_arg = Arg.(value & opt int 100_000 & info [ "n" ] ~docv:"N" ~doc:"Number of keys.")

let keep_arg =
  Arg.(value & opt int 5 & info [ "keep-every" ] ~docv:"M" ~doc:"Keep every M-th key; delete the rest.")

let mode_arg =
  Arg.(value & opt string "scan" & info [ "mode" ] ~docv:"MODE" ~doc:"Compression mode: scan or queue.")

let compress_t = Term.(const compress_cmd $ n_arg $ order_arg $ keep_arg $ mode_arg)

let dump_n_arg = Arg.(value & opt int 50 & info [ "n" ] ~docv:"N" ~doc:"Number of keys.")
let dump_order_arg = Arg.(value & opt int 2 & info [ "order"; "k" ] ~docv:"K" ~doc:"Order.")
let dump_t = Term.(const dump_cmd $ dump_n_arg $ dump_order_arg)
let path_arg =
  Arg.(value & opt (some string) None
       & info [ "path" ] ~docv:"FILE" ~doc:"Checkpoint to a real paged file instead of an in-memory snapshot.")

let snapshot_t = Term.(const snapshot_cmd $ n_arg $ order_arg $ path_arg)

let trace_path_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Trace file.")

let trace_gen_t =
  Term.(const trace_gen_cmd $ trace_path_arg $ mix_arg $ dist_arg $ ops_arg $ space_arg $ seed_arg)

let trace_run_t = Term.(const trace_run_cmd $ trace_path_arg $ order_arg)

let quick_arg =
  Arg.(value & flag
       & info [ "quick" ]
           ~doc:"Fewer configurations and crash ordinals (the CI smoke setting).")

let verbose_arg =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Log each run as it happens.")

let crash_shards_arg =
  Arg.(value & opt int 4
       & info [ "shards" ] ~docv:"N"
           ~doc:"Shard count for the partition-layer crash sweep (1 skips it).")

let crash_test_t =
  Term.(const crash_test_cmd $ quick_arg $ verbose_arg $ crash_shards_arg)

let workers_arg =
  Arg.(value & opt int 4
       & info [ "workers" ] ~docv:"N"
           ~doc:"Server worker domains (bounds concurrently served connections).")

let port_arg =
  Arg.(value & opt int 7070
       & info [ "port"; "p" ] ~docv:"PORT"
           ~doc:"TCP port on 127.0.0.1 (0 picks one; -1 disables TCP).")

let unix_arg =
  Arg.(value & opt (some string) None
       & info [ "unix" ] ~docv:"PATH" ~doc:"Also listen on a Unix-domain socket.")

let mvcc_arg =
  Arg.(value & flag
       & info [ "mvcc" ]
           ~doc:"Serve the version-stamped sagiv-mvcc backend: SNAPSHOT \
                 sessions pin a consistent cut, and every RANGE is answered \
                 at a point-in-time epoch even without a session. Composes \
                 with --shards (one epoch across all shards) and with \
                 --backend disk, where the version chains persist through \
                 the paged store and survive crash recovery.")

let serve_path_arg =
  Arg.(value & opt (some string) None
       & info [ "path" ] ~docv:"PATH"
           ~doc:"File-backed store base path (requires --backend disk; shard \
                 i lives at PATH.si, its log at PATH.wal.si). Opens an \
                 existing store — recovering from its WAL if one is present \
                 — or creates a fresh one.")

let serve_t =
  Term.(
    const serve_cmd $ tree_arg $ backend_arg $ order_arg $ durability_arg
    $ commit_batch_arg $ workers_arg $ port_arg $ unix_arg $ shards_arg
    $ combine_arg $ mvcc_arg $ serve_path_arg)

let host_arg =
  Arg.(value & opt string "127.0.0.1"
       & info [ "host" ] ~docv:"HOST" ~doc:"Server address.")

let script_arg =
  Arg.(value & pos_all string []
       & info [] ~docv:"CMD"
           ~doc:"Session commands (else read from stdin, one per line): \
                 'insert K V', 'delete K', 'search K', 'range LO HI', \
                 'commit', 'stats', 'snapshot', 'snapshot-close'.")

let client_t = Term.(const client_cmd $ host_arg $ port_arg $ unix_arg $ script_arg)

let scan_lo_arg =
  Arg.(value & opt int 0 & info [ "lo" ] ~docv:"K" ~doc:"Lowest key to cover.")

let scan_hi_arg =
  Arg.(value & opt int 1_000_000
       & info [ "hi" ] ~docv:"K" ~doc:"Highest key to cover (inclusive).")

let scan_chunk_arg =
  Arg.(value & opt int 32_768
       & info [ "chunk" ] ~docv:"N"
           ~doc:"Key-window width per RANGE request (bounds frame sizes; the \
                 session pin keeps every window at the same cut).")

let scan_t =
  Term.(
    const scan_cmd $ host_arg $ port_arg $ unix_arg $ scan_lo_arg $ scan_hi_arg
    $ scan_chunk_arg)

let backup_out_arg =
  Arg.(required & pos 0 (some string) None
       & info [] ~docv:"FILE" ~doc:"Backup file to write ('key value' lines).")

let backup_t =
  Term.(
    const backup_cmd $ host_arg $ port_arg $ unix_arg $ backup_out_arg
    $ scan_lo_arg $ scan_hi_arg $ scan_chunk_arg)

let replica_shard_arg =
  Arg.(value & opt int 0
       & info [ "shard" ] ~docv:"S"
           ~doc:"Primary shard to follow (one replica process per shard).")

let replica_serve_arg =
  Arg.(value & opt int (-1)
       & info [ "serve-port" ] ~docv:"PORT"
           ~doc:"Also serve the replica on this TCP port (127.0.0.1): \
                 read-only at the replay horizon, read-write after \
                 promotion. -1 disables.")

let replica_poll_arg =
  Arg.(value & opt int 300
       & info [ "poll-ms" ] ~docv:"MS"
           ~doc:"Long-poll window per pull when caught up.")

let replica_once_arg =
  Arg.(value & flag
       & info [ "once" ]
           ~doc:"Catch up to the primary's durable horizon, report, and exit \
                 (no promotion).")

let replica_promote_arg =
  Arg.(value & flag
       & info [ "promote" ]
           ~doc:"When the primary connection is lost (or on ctrl-C), promote \
                 the replica read-write at its replay horizon and keep \
                 serving.")

let replica_t =
  Term.(
    const replica_cmd $ host_arg $ port_arg $ unix_arg $ replica_shard_arg
    $ replica_serve_arg $ workers_arg $ replica_poll_arg $ replica_once_arg
    $ replica_promote_arg)

let cmds =
  [
    Cmd.v (Cmd.info "run" ~doc:"Run a multi-domain workload") run_t;
    Cmd.v (Cmd.info "trace-gen" ~doc:"Generate an operation trace file") trace_gen_t;
    Cmd.v
      (Cmd.info "trace-run" ~doc:"Replay a trace on every tree and cross-check")
      trace_run_t;
    Cmd.v (Cmd.info "compress" ~doc:"Build/delete/compress cycle") compress_t;
    Cmd.v (Cmd.info "dump" ~doc:"Print a small tree's structure") dump_t;
    Cmd.v (Cmd.info "snapshot" ~doc:"Save/load roundtrip") snapshot_t;
    Cmd.v
      (Cmd.info "crash-test"
         ~doc:"Fault-injection battery: crash at every failpoint site, recover, \
               check against the durability oracle")
      crash_test_t;
    Cmd.v
      (Cmd.info "serve"
         ~doc:"Serve a tree over TCP / Unix sockets (pipelined binary protocol; \
               on the disk backend every acked write is durably committed)")
      serve_t;
    Cmd.v
      (Cmd.info "client" ~doc:"Run a scripted pipelined session against a server")
      client_t;
    Cmd.v
      (Cmd.info "scan"
         ~doc:"Consistent scan of a running --mvcc server: pin a SNAPSHOT \
               session, pull chunked ranges all at that cut, print the pairs")
      scan_t;
    Cmd.v
      (Cmd.info "backup"
         ~doc:"Online backup of a running --mvcc server into a file — one \
               point-in-time cut, zero writer stalls")
      backup_t;
    Cmd.v
      (Cmd.info "replica"
         ~doc:"Follow a WAL-mode server as a read replica (pull the log over \
               the Subscribe opcode, serve reads at the replay horizon, \
               optionally promote to read-write when the primary is gone)")
      replica_t;
  ]

let () =
  let doc = "Concurrent B*-tree with overtaking (Sagiv 1985) — workload driver" in
  exit (Cmd.eval (Cmd.group (Cmd.info "blink-cli" ~doc) cmds))
